package collector_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpspatial/internal/collector"
)

// These tests pin the /metrics exposition to the behaviors the rest of
// the suite already proves: the counters must move exactly when the
// exactly-once, query-cache and durability tests say the underlying
// events happen — and a quiesced collector must scrape byte-identically,
// which is what makes the exposition diffable in CI artifacts.

// scrapeMetrics GETs /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + collector.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// seriesValue extracts one series' value from an exposition body by its
// exact rendered name — "name" for unlabeled series, `name{label="v"}`
// for labeled ones. A missing series fails the test: every series these
// tests read is part of the stable name contract.
func seriesValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != series {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: unparsable value %q", series, val)
		}
		return f
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, exposition)
	return 0
}

// seriesSum sums every series of a family regardless of labels, 0 when
// the family has no series yet.
func seriesSum(t *testing.T, exposition, family string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		base, _, _ := strings.Cut(name, "{")
		if base != family {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: unparsable value %q", name, val)
		}
		sum += f
	}
	return sum
}

// TestMetricsQuiescedScrapesByteIdentical exercises a collector through
// submissions, estimates and queries, then scrapes /metrics twice with
// no traffic in between: the two bodies must be byte-identical, because
// scraping is excluded from its own accounting and no exported series is
// time-derived.
func TestMetricsQuiescedScrapesByteIdentical(t *testing.T) {
	mech := newDAM(t, 5, 2.0)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	for _, s := range accumulateShards(t, mech, 2, 41) {
		if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := client.Estimate(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.QueryTopK(ctx, 3); err != nil {
		t.Fatal(err)
	}

	first := scrapeMetrics(t, client.BaseURL)
	second := scrapeMetrics(t, client.BaseURL)
	if first != second {
		t.Fatalf("two scrapes of a quiesced collector differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "# TYPE dpspatial_submissions_total counter") {
		t.Fatal("exposition is missing the dpspatial_submissions_total TYPE header")
	}
}

// TestMetricsDuplicateReplayLockstep mirrors TestSubmissionIDExactlyOnce
// on the counter surface: a replayed submission ID must move the
// duplicate outcome by exactly one while accepted stays put — if the
// idempotency log ever double-merged, these series would say so.
func TestMetricsDuplicateReplayLockstep(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	blob, err := accumulateShards(t, mech, 1, 21)[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	id := collector.NewSubmissionID()
	if _, err := client.SubmitAggregateBlobWithID(ctx, blob, nil, id); err != nil {
		t.Fatal(err)
	}
	exp := scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_submissions_total{outcome="accepted"}`); got != 1 {
		t.Fatalf("accepted = %g after one submission, want 1", got)
	}
	if got := seriesSum(t, exp, "dpspatial_submissions_total"); got != 1 {
		t.Fatalf("total submission outcomes = %g, want 1", got)
	}

	replay, err := client.SubmitAggregateBlobWithID(ctx, blob, nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Duplicate {
		t.Fatal("replayed ID not marked duplicate")
	}
	exp = scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_submissions_total{outcome="accepted"}`); got != 1 {
		t.Fatalf("accepted = %g after replay, want 1 (replay must not re-merge)", got)
	}
	if got := seriesValue(t, exp, `dpspatial_submissions_total{outcome="duplicate"}`); got != 1 {
		t.Fatalf("duplicate = %g after replay, want 1", got)
	}
	if got := seriesValue(t, exp, "dpspatial_generation"); got != 1 {
		t.Fatalf("generation gauge = %g, want 1", got)
	}
}

// TestMetricsQueryCacheLockstep pins the cache counters to the
// generation-keyed decode cache: repeated estimates at an unchanged
// generation are hits, and a new submission forces exactly one more
// miss — decoded warm, which the decode-mode series must show.
func TestMetricsQueryCacheLockstep(t *testing.T) {
	mech := newDAM(t, 5, 1.5)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	shards := accumulateShards(t, mech, 2, 61)
	if _, err := client.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}

	if _, _, err := client.Estimate(ctx); err != nil {
		t.Fatal(err)
	}
	exp := scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_query_cache_misses_total{kind="estimate"}`); got != 1 {
		t.Fatalf("estimate cache misses = %g after first decode, want 1", got)
	}
	if got := seriesValue(t, exp, `dpspatial_decodes_total{mode="cold"}`); got != 1 {
		t.Fatalf("cold decodes = %g, want 1", got)
	}

	for i := 0; i < 3; i++ {
		if _, _, err := client.Estimate(ctx); err != nil {
			t.Fatal(err)
		}
	}
	exp = scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_query_cache_hits_total{kind="estimate"}`); got != 3 {
		t.Fatalf("estimate cache hits = %g after three re-fetches, want 3", got)
	}
	if got := seriesValue(t, exp, `dpspatial_query_cache_misses_total{kind="estimate"}`); got != 1 {
		t.Fatalf("estimate cache misses moved to %g on cached fetches, want 1", got)
	}

	if _, err := client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	if _, meta, err := client.Estimate(ctx); err != nil {
		t.Fatal(err)
	} else if !meta.Warm {
		t.Fatal("re-decode after a merge should warm-start")
	}
	exp = scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_query_cache_misses_total{kind="estimate"}`); got != 2 {
		t.Fatalf("estimate cache misses = %g after invalidating merge, want 2", got)
	}
	if got := seriesValue(t, exp, `dpspatial_decodes_total{mode="warm"}`); got != 1 {
		t.Fatalf("warm decodes = %g, want 1", got)
	}
	// /v1/estimate is not /v1/query; the query counters must not move.
	if got := seriesSum(t, exp, "dpspatial_queries_total"); got != 0 {
		t.Fatalf("served queries = %g without any /v1/query traffic, want 0", got)
	}
}

// TestMetricsRefusalCounters drives the refusal matrix: an incompatible
// shard must count as a refused submission under its HTTP status code,
// and a malformed query as a refused query under 400 — without ever
// touching the accepted or served counters.
func TestMetricsRefusalCounters(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()

	foreign := newDAM(t, 7, 2.0) // different grid → incompatible scheme
	_, err := client.SubmitAggregate(ctx, foreign.NewAggregate(), nil)
	if err == nil {
		t.Fatal("foreign-scheme shard should be refused")
	}
	var se *collector.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("refusal is not a StatusError: %v", err)
	}

	resp, err := http.Get(client.BaseURL + "/v1/query?type=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus query type answered HTTP %d, want 400", resp.StatusCode)
	}

	exp := scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_submissions_total{outcome="refused"}`); got != 1 {
		t.Fatalf("refused submissions = %g, want 1", got)
	}
	refusalSeries := `dpspatial_submission_refusals_total{code="` + strconv.Itoa(se.StatusCode) + `"}`
	if got := seriesValue(t, exp, refusalSeries); got != 1 {
		t.Fatalf("%s = %g, want 1", refusalSeries, got)
	}
	if got := seriesValue(t, exp, `dpspatial_query_refusals_total{code="400"}`); got != 1 {
		t.Fatalf("400 query refusals = %g, want 1", got)
	}
	if got := seriesSum(t, exp, "dpspatial_queries_total"); got != 0 {
		t.Fatalf("served queries = %g with only refused traffic, want 0", got)
	}
	if got := seriesValue(t, exp, `dpspatial_http_requests_total{path="/v1/query",code="400"}`); got != 1 {
		t.Fatalf("request counter for the refused query = %g, want 1", got)
	}
}

// TestMetricsDurableCounters checks a durable collector surfaces the
// store's WAL accounting — fsyncs and appended records move with
// submissions — and that a restart of the same data directory exposes
// the recovery's replayed-record count and still answers a replayed
// submission ID as a duplicate on the counter surface.
func TestMetricsDurableCounters(t *testing.T) {
	const d, eps = 5, 2.0
	mech := newDAM(t, d, eps)
	dir := t.TempDir()
	client, _, st := startDurable(t, dir, collector.Config{
		Mechanism: mech, Pipeline: durPipeline(mech, d, eps), SnapshotEvery: -1,
	})
	ctx := context.Background()
	shards := accumulateShards(t, mech, 3, 77)
	blobs, ids := marshalShards(t, shards, "metrics")
	for i := range blobs {
		if _, err := client.SubmitAggregateBlobWithID(ctx, blobs[i], nil, ids[i]); err != nil {
			t.Fatal(err)
		}
	}

	exp := scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, "dpspatial_durable_wal_records_appended_total"); got < 3 {
		t.Fatalf("WAL records appended = %g after 3 submissions, want >= 3", got)
	}
	if got := seriesValue(t, exp, "dpspatial_durable_wal_fsyncs_total"); got < 3 {
		t.Fatalf("WAL fsyncs = %g after 3 synced submissions, want >= 3", got)
	}
	if got := seriesValue(t, exp, "dpspatial_durable_wal_bytes_written_total"); got <= 0 {
		t.Fatalf("WAL bytes written = %g, want > 0", got)
	}
	st.Close() // crash: no snapshot, no collector Close

	// Reopen the same directory: recovery replays the WAL, and the
	// restarted process's exposition must say how much it replayed.
	client2, _, _ := startDurable(t, dir, collector.Config{Build: durBuild(t), SnapshotEvery: -1})
	exp = scrapeMetrics(t, client2.BaseURL)
	if got := seriesValue(t, exp, "dpspatial_durable_wal_records_replayed"); got < 3 {
		t.Fatalf("records replayed on recovery = %g, want >= 3", got)
	}
	if got := seriesValue(t, exp, "dpspatial_reports"); got <= 0 {
		t.Fatalf("recovered collector reports gauge = %g, want > 0", got)
	}
	if _, err := client2.SubmitAggregateBlobWithID(ctx, blobs[0], nil, ids[0]); err != nil {
		t.Fatal(err)
	}
	exp = scrapeMetrics(t, client2.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_submissions_total{outcome="duplicate"}`); got != 1 {
		t.Fatalf("cross-restart replay duplicate = %g, want 1", got)
	}
}

// TestMetricsDisabled checks DisableMetrics unroutes the endpoint: the
// damctl --metrics=false escape hatch must 404, not serve an empty page.
func TestMetricsDisabled(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	c, err := collector.New(collector.Config{Mechanism: mech, DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	t.Cleanup(func() { srv.Close(); c.Close() })
	resp, err := http.Get(srv.URL + collector.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics answered HTTP %d, want 404", resp.StatusCode)
	}
}

// TestMetricsConcurrentTraffic floods a collector with parallel
// submissions, estimate fetches and scrapes while a fast background
// cadence keeps decoding (run with -race in CI): no lost updates — the
// accepted counter must equal the number of successful submissions.
func TestMetricsConcurrentTraffic(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	client, _ := startServer(t, mech, time.Millisecond)
	ctx := context.Background()
	shards := accumulateShards(t, mech, 8, 91)
	// Merge one shard up front so concurrent estimates never race an
	// empty collector into a 409.
	if _, err := client.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(shards)+8)
	for _, s := range shards[1:] {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
				errs <- err
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(client.BaseURL + collector.MetricsPath)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, _, err := client.Estimate(ctx); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	exp := scrapeMetrics(t, client.BaseURL)
	if got := seriesValue(t, exp, `dpspatial_submissions_total{outcome="accepted"}`); got != float64(len(shards)) {
		t.Fatalf("accepted = %g after %d concurrent submissions, want %d", got, len(shards), len(shards))
	}
}
