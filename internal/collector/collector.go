// Package collector wraps the report lifecycle's aggregator and
// estimator stages in a long-running HTTP service. Devices (or upstream
// shards) POST report streams and binary aggregates; the collector
// merges them associatively under a single canonical aggregate — so the
// merged state is byte-identical regardless of arrival interleaving —
// and keeps a current estimate, re-decoding on a configurable merge
// cadence with warm-started EM so each refresh costs a fraction of a
// cold decode.
//
// The first decode after startup is a cold start, so an estimate fetched
// after a batch of submissions is byte-identical to calling
// EstimateFromAggregate on the same merged shards in process. Later
// refreshes warm-start from the previous generation's estimate and reach
// the same fixed point within the EM tolerance; /v1/stats reports the
// iterations saved.
package collector

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"dpspatial/internal/durable"
	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/metrics"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/trace"
)

// Estimator is the mechanism surface the collector needs: the client
// layer (to validate compatibility and allocate aggregates) plus the
// estimator stage. Every ReportingMechanism of the public API satisfies
// it.
type Estimator interface {
	fo.Reporter
	NewAggregate() *fo.Aggregate
	EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error)
}

// WarmEstimator is an Estimator with the incremental decode path.
// Mechanisms that implement it (the DAM family) get warm-started cadence
// refreshes; others re-decode cold each time.
type WarmEstimator interface {
	Estimator
	EstimateFromAggregateWarm(agg *fo.Aggregate, init *grid.Hist2D) (*grid.Hist2D, em.Stats, error)
}

// Config configures a collector.
type Config struct {
	// Mechanism, if non-nil, locks the collector to this estimator from
	// the start.
	Mechanism Estimator
	// Pipeline optionally records the metadata of a pre-built Mechanism,
	// so GET /v1/aggregate can replay it and submissions carrying
	// pipeline metadata are cross-checked in full — including the
	// geographic domain, which the report scheme string alone does not
	// encode. When nil, the first submission whose metadata
	// cross-checks against the mechanism (scheme and shape) pins it
	// for the rest of the daemon's life; set Pipeline explicitly to
	// control the domain rather than trusting the first client.
	Pipeline *Pipeline
	// Build, if set and Mechanism is nil, lets the collector adopt its
	// mechanism from the first submission that carries a Pipeline header
	// (a report stream's first line, or X-Dpspatial-Pipeline on a binary
	// aggregate POST). Until then, submissions without a header are
	// rejected with 409.
	Build func(p *Pipeline) (Estimator, error)
	// Cadence is the background refresh period: every Cadence the
	// collector re-decodes the estimate if new shards arrived (warm-
	// started when the mechanism supports it). Zero disables the
	// background loop; GET /v1/estimate still refreshes on demand.
	Cadence time.Duration
	// MaxBodyBytes caps accepted request bodies (default 64 MiB).
	MaxBodyBytes int64
	// AuthToken, when non-empty, locks every endpoint except GET
	// /healthz behind shared-secret bearer-token auth: requests must
	// carry "Authorization: Bearer <token>". Clients set the same token
	// in Client.AuthToken.
	AuthToken string
	// Store, when non-nil, makes the collector durable: the state the
	// store recovered is replayed at New (refusing on anything corrupt
	// or foreign), every accepted submission is appended to its WAL and
	// fsync'd BEFORE the ack is sent, and snapshots compact the log
	// every SnapshotEvery records plus once at Close. Without a store,
	// behavior is byte-identical to the in-memory collector.
	Store *durable.Store
	// SnapshotEvery is the WAL-record count between snapshots
	// (0 = DefaultSnapshotEvery; negative = snapshot only at Close).
	SnapshotEvery int
	// DisableMetrics leaves GET /metrics unrouted (404). The collector
	// still accounts internally; only the exposition endpoint is gated.
	DisableMetrics bool
	// DisableTraces turns request tracing off entirely: no spans are
	// recorded and GET /v1/traces is unrouted (404). Enabled by default
	// because span recording is allocation-light.
	DisableTraces bool
	// TraceCapacity bounds the completed-trace ring GET /v1/traces
	// serves (0 = trace.DefaultCapacity).
	TraceCapacity int
	// SlowLog, when non-nil, emits one structured log line (carrying
	// the trace ID) per request at or over its threshold.
	SlowLog *trace.SlowLogger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — behind
	// the same bearer gate as the data endpoints, and excluded from
	// request accounting and tracing. Off by default.
	EnablePprof bool
}

// DefaultSnapshotEvery is the snapshot cadence applied when a durable
// collector leaves SnapshotEvery unset: how many WAL records a crash
// may have to replay.
const DefaultSnapshotEvery = 256

// DefaultMaxBodyBytes is the request-body cap applied when a collector
// or fleet supervisor config leaves MaxBodyBytes unset.
const DefaultMaxBodyBytes = 64 << 20

// DedupWindow bounds the idempotency logs of collectors and
// supervisors: the acks of this many recent submissions are remembered
// for replay detection.
const DedupWindow = 1 << 16

// Collector is the HTTP service. It implements http.Handler; run it
// under any http.Server (or httptest.Server), and call Start/Close
// around the serving lifetime to run the cadence loop.
type Collector struct {
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler // mux behind the optional bearer-token gate

	// mu guards the mutable collector state. Submissions hold it only
	// for the merge itself, never during an EM decode.
	mu         sync.Mutex
	mech       Estimator
	pipeline   *Pipeline
	agg        *fo.Aggregate
	generation uint64
	est        *grid.Hist2D // estimate decoded from estGen (nil until first decode)
	estGen     uint64
	estIters   int     // EM iterations of the decode that produced est
	estWarm    bool    // whether that decode was warm-started
	estN       float64 // report count of the aggregate est was decoded from
	stats      Stats
	acks       *AckLog // idempotency log: submission ID → original ack

	// store, when non-nil, is the durable persistence layer; WAL appends
	// and snapshots run under mu as part of the submission commit.
	// pipelinePersisted tracks whether the store (snapshot or current
	// WAL) already holds the pinned pipeline, so each WAL generation
	// records it exactly once.
	store             *durable.Store
	pipelinePersisted bool

	// queryTree caches the quadtree decode backing /v1/query range
	// answers for TreeEstimator mechanisms, keyed by the generation it
	// was decoded from — a merge bumps the generation, invalidating it.
	queryTree    *rangequery.Quadtree
	queryTreeGen uint64
	queryTreeN   float64

	// decodeMu serialises EM decodes so concurrent GET /v1/estimate
	// requests do not duplicate work; submissions proceed meanwhile.
	decodeMu sync.Mutex

	// reg is the /metrics registry; met the shared instrument set
	// registered on it. Instrument updates are lock-free, so they are
	// bumped freely under mu; scrape-time funcs take mu themselves.
	reg *metrics.Registry
	met *ServiceMetrics

	// tracer records per-request span trees into the bounded ring GET
	// /v1/traces serves; nil when tracing is disabled (every span call
	// no-ops on nil).
	tracer *trace.Tracer

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a collector. Either cfg.Mechanism or cfg.Build must be set.
func New(cfg Config) (*Collector, error) {
	if cfg.Mechanism == nil && cfg.Build == nil {
		return nil, fmt.Errorf("collector: config needs a Mechanism or a Build hook")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	c := &Collector{cfg: cfg, store: cfg.Store, stop: make(chan struct{}), acks: NewAckLog(DedupWindow)}
	c.reg = metrics.New()
	c.met = NewServiceMetrics(c.reg)
	if cfg.Mechanism != nil {
		c.mech = cfg.Mechanism
		c.pipeline = cfg.Pipeline
		c.agg = cfg.Mechanism.NewAggregate()
		c.stats.Scheme = cfg.Mechanism.Scheme()
	}
	if c.store != nil {
		if err := c.recoverFromStore(); err != nil {
			return nil, fmt.Errorf("collector: recovering durable state: %w", err)
		}
	}
	c.stats.CadenceMillis = cfg.Cadence.Milliseconds()
	c.registerCollectorMetrics()
	if !cfg.DisableTraces {
		c.tracer = trace.NewTracer("collector", cfg.TraceCapacity)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/v1/report", c.handleReport)
	c.mux.HandleFunc("/v1/aggregate", c.handleAggregate)
	c.mux.HandleFunc("/v1/estimate", c.handleEstimate)
	c.mux.HandleFunc("/v1/query", c.handleQuery)
	c.mux.HandleFunc("/v1/stats", c.handleStats)
	if !cfg.DisableMetrics {
		c.mux.Handle(MetricsPath, c.reg.Handler())
	}
	if c.tracer != nil {
		c.mux.Handle(TracesPath, c.tracer.Handler())
	}
	if cfg.EnablePprof {
		MountPprof(c.mux)
	}
	c.handler = trace.Middleware(c.tracer, cfg.SlowLog, UntracedPath,
		InstrumentHTTP(c.met, RequireBearer(cfg.AuthToken, c.mux)))
	return c, nil
}

// MountPprof routes net/http/pprof's handlers under PprofPathPrefix on
// the mux. Both tiers mount it INSIDE their bearer gate — profiling
// data leaks code layout and timing, so it gets the same secret as the
// data endpoints — and outside their request accounting and tracing, so
// enabling a profile run perturbs neither the /metrics series nor the
// trace ring.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc(PprofPathPrefix, pprof.Index)
	mux.HandleFunc(PprofPathPrefix+"cmdline", pprof.Cmdline)
	mux.HandleFunc(PprofPathPrefix+"profile", pprof.Profile)
	mux.HandleFunc(PprofPathPrefix+"symbol", pprof.Symbol)
	mux.HandleFunc(PprofPathPrefix+"trace", pprof.Trace)
}

// ServeHTTP implements http.Handler.
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// Tracer exposes the collector's completed-trace ring — nil when the
// collector was built with DisableTraces.
func (c *Collector) Tracer() *trace.Tracer { return c.tracer }

// Start launches the background merge-cadence loop. It is a no-op when
// the configured cadence is zero.
func (c *Collector) Start() {
	if c.cfg.Cadence <= 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.Cadence)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				// Refresh errors surface on the next GET; the loop only
				// keeps the estimate warm. No request, so no trace.
				_, _ = c.refresh(context.Background())
			}
		}
	}()
}

// Close stops the cadence loop and, on a durable collector, compacts
// any WAL records into a final snapshot so the next start recovers from
// the snapshot alone. The handler stays usable. A failed final snapshot
// is harmless — the WAL still holds everything it would have covered.
func (c *Collector) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.mu.Lock()
	if c.store != nil && c.mech != nil && c.store.RecordsSinceSnapshot() > 0 {
		_ = c.snapshotLocked()
	}
	c.mu.Unlock()
}

// resolveMechanism returns the mechanism a submission carrying pipeline
// metadata p (which may be nil) should validate against — the installed
// one, or a candidate freshly built from p when the collector is still
// unlocked. A candidate (adopted=true) is NOT installed here: callers
// commit it with adoptLocked only after the whole submission validates,
// so a rejected shard can never lock the collector to its mechanism.
func (c *Collector) resolveMechanism(p *Pipeline) (mech Estimator, adopted bool, err error) {
	c.mu.Lock()
	installed, pipeline := c.mech, c.pipeline
	c.mu.Unlock()
	if installed != nil {
		if p != nil && p.Scheme != "" && p.Scheme != installed.Scheme() {
			return nil, false, fmt.Errorf("submission scheme %q does not match collector scheme %q", p.Scheme, installed.Scheme())
		}
		if p != nil && pipeline != nil {
			if err := pipeline.Compatible(p); err != nil {
				return nil, false, err
			}
		}
		return installed, false, nil
	}
	if p == nil {
		return nil, false, fmt.Errorf("collector has no mechanism yet; submit a shard with pipeline metadata first")
	}
	candidate, err := c.cfg.Build(p)
	if err != nil {
		return nil, false, fmt.Errorf("building mechanism from pipeline: %w", err)
	}
	if p.Scheme != "" && candidate.Scheme() != p.Scheme {
		return nil, false, fmt.Errorf("rebuilt mechanism scheme %q does not match submitted scheme %q", candidate.Scheme(), p.Scheme)
	}
	return candidate, true, nil
}

// adoptLocked installs a validated candidate mechanism — unless a
// concurrent submission already installed one, in which case the
// candidate must agree on the scheme. Callers hold mu.
func (c *Collector) adoptLocked(mech Estimator, p *Pipeline) error {
	if c.mech != nil {
		if c.mech.Scheme() != mech.Scheme() {
			return fmt.Errorf("submission scheme %q does not match collector scheme %q", mech.Scheme(), c.mech.Scheme())
		}
		return nil
	}
	pin := *p
	c.mech = mech
	c.pipeline = &pin
	c.agg = mech.NewAggregate()
	c.stats.Scheme = mech.Scheme()
	return nil
}

// checkAndPinPipelineLocked validates a submission's pipeline metadata
// at commit time — under mu, because the resolveMechanism snapshot may
// be stale by the time the body has been processed — and records the
// first cross-checkable metadata when the collector was constructed
// with a bare Mechanism and no Pipeline. The report scheme alone does
// not encode the geographic domain, so without the pin a same-scheme
// shard collected over a different region would merge silently; once
// pinned, Pipeline.Compatible refuses it, including for concurrent
// first submissions racing each other. A header only becomes the pin if
// its scheme and (when present) shape agree with the installed
// mechanism, so one misconfigured client cannot poison the pin and
// lock every later correct submission out. Callers hold mu; c.mech is
// installed.
func (c *Collector) checkAndPinPipelineLocked(p *Pipeline) error {
	if p == nil {
		return nil
	}
	if p.Scheme != "" && p.Scheme != c.mech.Scheme() {
		return fmt.Errorf("submission scheme %q does not match collector scheme %q", p.Scheme, c.mech.Scheme())
	}
	if c.pipeline != nil {
		return c.pipeline.Compatible(p)
	}
	if p.Shape != nil {
		shape := c.mech.ReportShape()
		if len(p.Shape) != len(shape) {
			return fmt.Errorf("submission declares %d report planes, mechanism has %d", len(p.Shape), len(shape))
		}
		for i, n := range shape {
			if p.Shape[i] != n {
				return fmt.Errorf("submission plane %d has %d counts, mechanism expects %d", i, p.Shape[i], n)
			}
		}
	}
	if p.Scheme == "" || p.Mech == "" || p.D <= 0 || p.Domain.Side <= 0 {
		// Partial metadata cannot be cross-checked (and would lock out
		// fully-specified clients if pinned): merge but never pin it.
		return nil
	}
	pin := *p
	c.pipeline = &pin
	return nil
}

// commitShard runs the locked commit of a fully parsed and validated
// submission: replay-check the submission ID, install an adopted
// candidate mechanism, validate and pin the pipeline metadata, persist
// the submission to the WAL (durable collectors), merge the shard, and
// count it. Both submission handlers share it so the adoption
// transaction cannot diverge between the report and aggregate paths. A
// replayed ID returns the original ack without merging, which is what
// makes client retries after a lost response exactly-once.
//
// The commit order is what extends that guarantee across a crash: the
// ack is constructed from the post-merge totals, fsync'd into the WAL,
// and only THEN merged — so every acknowledged submission is on disk,
// and since the shard already passed Compatible (a superset of Merge's
// checks) the merge after a successful append cannot fail, keeping
// memory and disk in lockstep.
func (c *Collector) commitShard(ctx context.Context, shard *fo.Aggregate, hdr *Pipeline, mech Estimator, adopted bool, id string, kind shardKind) (SubmitResponse, error) {
	span := trace.SpanFrom(ctx)
	span.SetAttr(trace.String("submissionId", id), trace.String("shardKind", kind.String()))
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.acks.Get(id); ok {
		c.stats.DuplicateShards++
		c.met.Submissions.With(SubmissionDuplicate).Inc()
		// The replayed ack carries the ORIGINAL submission's trace ID —
		// the one whose trace actually holds the merge spans.
		span.Event("duplicate.replay", trace.String("originalTraceId", prev.TraceID))
		return prev, nil
	}
	if adopted {
		if err := c.adoptLocked(mech, hdr); err != nil {
			return SubmitResponse{}, err
		}
	}
	if err := c.checkAndPinPipelineLocked(hdr); err != nil {
		return SubmitResponse{}, err
	}
	if err := shard.Compatible(c.mech); err != nil {
		return SubmitResponse{}, err
	}
	resp := SubmitResponse{
		Scheme:       c.mech.Scheme(),
		Reports:      shard.N,
		TotalReports: c.agg.N + shard.N,
		Generation:   c.generation + 1,
		TraceID:      span.TraceID(),
	}
	if err := c.persistShardLocked(span, shard, resp, id, kind); err != nil {
		return SubmitResponse{}, err
	}
	mergeSpan := span.Child("collector.merge")
	if err := c.agg.Merge(shard); err != nil {
		mergeSpan.Fail(err)
		mergeSpan.End()
		return SubmitResponse{}, err
	}
	c.generation++
	mergeSpan.SetAttr(
		trace.Float("reports", shard.N),
		trace.Float("totalReports", c.agg.N),
		trace.Int("generation", int64(c.generation)),
	)
	mergeSpan.End()
	c.stats.Generation = c.generation
	c.stats.Reports = c.agg.N
	kind.count(&c.stats)
	ackSpan := span.Child("collector.ack")
	c.acks.Put(id, resp)
	ackSpan.End()
	c.met.Submissions.With(SubmissionAccepted).Inc()
	c.maybeSnapshotLocked()
	return resp, nil
}

// replayedAck answers a submission whose ID was already merged without
// touching the request body — the handlers' fast path.
func (c *Collector) replayedAck(r *http.Request) (SubmitResponse, bool) {
	id := r.Header.Get(SubmissionIDHeader)
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, ok := c.acks.Get(id)
	if ok {
		c.stats.DuplicateShards++
		c.met.Submissions.With(SubmissionDuplicate).Inc()
		span := trace.SpanFrom(r.Context())
		span.SetAttr(trace.String("submissionId", id))
		span.Event("duplicate.replay", trace.String("originalTraceId", prev.TraceID))
	}
	return prev, ok
}

// estimateState is one decoded estimate plus the metadata of the decode
// that produced it.
type estimateState struct {
	est   *grid.Hist2D
	gen   uint64
	n     float64
	iters int
	warm  bool
}

// refresh brings the estimate up to the current generation, decoding at
// most once. The first decode is cold (EstimateFromAggregate semantics);
// later decodes warm-start from the previous estimate when the mechanism
// supports it. It returns the current estimate and the generation it was
// decoded from. A traced request context hangs a cache-hit event or an
// EM-decode span off its active span; background callers pass
// context.Background() and record nothing.
func (c *Collector) refresh(ctx context.Context) (estimateState, error) {
	span := trace.SpanFrom(ctx)
	c.decodeMu.Lock()
	defer c.decodeMu.Unlock()

	c.mu.Lock()
	if c.mech == nil {
		c.mu.Unlock()
		return estimateState{}, fmt.Errorf("collector has no mechanism yet")
	}
	if c.agg.N == 0 {
		c.mu.Unlock()
		return estimateState{}, fmt.Errorf("no reports merged yet")
	}
	if c.est != nil && c.estGen == c.generation {
		cur := estimateState{est: c.est, gen: c.estGen, n: c.estN, iters: c.estIters, warm: c.estWarm}
		c.mu.Unlock()
		c.met.QueryCacheHits.With(CacheEstimate).Inc()
		span.Event("estimate.cache.hit", trace.Int("generation", int64(cur.gen)))
		return cur, nil
	}
	// Snapshot under the lock, decode outside it: submissions keep
	// flowing while EM runs; decodeMu guarantees a single decoder.
	snapshot := c.agg.Clone()
	snapGen := c.generation
	init := c.est
	mech := c.mech
	c.mu.Unlock()
	c.met.QueryCacheMisses.With(CacheEstimate).Inc()

	decodeSpan := span.Child("collector.em.decode")
	t0 := time.Now()
	est, iters, warm, err := DecodeEstimate(mech, snapshot, init)
	if err != nil {
		decodeSpan.Fail(err)
		decodeSpan.End()
		return estimateState{}, err
	}
	elapsed := time.Since(t0)
	mode := "cold"
	if warm {
		mode = "warm"
	}
	decodeSpan.SetAttr(
		trace.String("mode", mode),
		trace.Int("iterations", int64(iters)),
		trace.Int("generation", int64(snapGen)),
	)
	decodeSpan.End()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.est, c.estGen, c.estN = est, snapGen, snapshot.N
	c.estIters, c.estWarm = iters, warm
	c.stats.EstimateGeneration = snapGen
	savedBefore := c.stats.IterationsSaved
	c.stats.Account(iters, warm)
	c.met.ObserveDecode(elapsed, iters, warm, c.stats.IterationsSaved-savedBefore)
	return estimateState{est: est, gen: snapGen, n: snapshot.N, iters: iters, warm: warm}, nil
}

// DecodeEstimate runs one estimate decode: warm-started from init when
// the mechanism supports it and init is non-nil, cold otherwise. The
// collector's refresh and the fleet supervisor's share it so the
// cold/warm selection cannot diverge between the tiers.
func DecodeEstimate(mech Estimator, agg *fo.Aggregate, init *grid.Hist2D) (est *grid.Hist2D, iters int, warm bool, err error) {
	if ws, ok := mech.(WarmEstimator); ok {
		e, stats, err := ws.EstimateFromAggregateWarm(agg, init)
		if err != nil {
			return nil, 0, false, err
		}
		return e, stats.Iterations, init != nil, nil
	}
	e, err := mech.EstimateFromAggregate(agg)
	if err != nil {
		return nil, 0, false, err
	}
	return e, 0, false, nil
}

// --- HTTP handlers ---

func (c *Collector) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	c.mu.Lock()
	scheme := ""
	if c.mech != nil {
		scheme = c.mech.Scheme()
	}
	gen := c.generation
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "scheme": scheme, "generation": gen,
	})
}

// handleReport accepts a report stream: the cmd/damctl reports framing
// (a Pipeline header line, then one JSON report per line), or bare
// report lines when the collector is already locked to a scheme. The
// whole stream counts as one shard and merges atomically.
func (c *Collector) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	if prev, ok := c.replayedAck(r); ok {
		writeJSON(w, http.StatusOK, &prev)
		return
	}
	// The body-read span covers probing, parsing and counting the whole
	// stream into the shard aggregate. End is idempotent: the success
	// path ends it with the report count, the deferred call closes it on
	// every early (4xx) return.
	readSpan := trace.SpanFrom(r.Context()).Child("collector.body.read")
	defer readSpan.End()
	br := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes), 1<<20)
	first, err := br.ReadBytes('\n')
	if err != nil && len(first) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty report stream"))
		return
	}
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(first, &probe); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("first line is neither a pipeline header nor a report: %v", err))
		return
	}

	var hdr *Pipeline
	var firstReport *fo.Report
	switch probe.Format {
	case ReportsFormat:
		hdr = &Pipeline{}
		if err := json.Unmarshal(first, hdr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad pipeline header: %v", err))
			return
		}
	case "":
		var rep fo.Report
		if err := json.Unmarshal(first, &rep); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad report line: %v", err))
			return
		}
		firstReport = &rep
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", probe.Format))
		return
	}

	// Resolve the mechanism (building a not-yet-installed candidate on
	// first contact), then count the stream into a shard aggregate
	// outside the lock so report counting never blocks other shards.
	// Adoption commits only after the whole stream parses.
	mech, adopted, err := c.resolveMechanism(hdr)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}

	shard := mech.NewAggregate()
	if firstReport != nil {
		if err := shard.Add(*firstReport); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	dec := json.NewDecoder(br)
	for {
		var rep fo.Report
		if err := dec.Decode(&rep); err == io.EOF {
			break
		} else if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad report line: %v", err))
			return
		}
		if err := shard.Add(rep); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	readSpan.SetAttr(trace.Float("reports", shard.N))
	readSpan.End()

	resp, err := c.commitShard(r.Context(), shard, hdr, mech, adopted, r.Header.Get(SubmissionIDHeader), shardReport)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &resp)
}

// handleAggregate accepts a serialized aggregate shard (POST, DPA1/DPA2
// blob) or serves the merged canonical aggregate (GET, DPA2 blob).
func (c *Collector) handleAggregate(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
	case http.MethodGet:
		c.serveAggregate(w)
		return
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST only"))
		return
	}
	if prev, ok := c.replayedAck(r); ok {
		writeJSON(w, http.StatusOK, &prev)
		return
	}
	readSpan := trace.SpanFrom(r.Context()).Child("collector.body.read")
	defer readSpan.End()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	shard := &fo.Aggregate{}
	if err := shard.UnmarshalBinary(body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	readSpan.SetAttr(trace.Int("bodyBytes", int64(len(body))), trace.Float("reports", shard.N))
	readSpan.End()
	var hdr *Pipeline
	if raw := r.Header.Get(PipelineHeader); raw != "" {
		hdr = &Pipeline{}
		if err := json.Unmarshal([]byte(raw), hdr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s header: %v", PipelineHeader, err))
			return
		}
	}
	mech, adopted, err := c.resolveMechanism(hdr)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	// Validate the shard against the resolved mechanism BEFORE any
	// adoption commits: a bad blob must not lock the collector.
	if err := shard.Compatible(mech); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	resp, err := c.commitShard(r.Context(), shard, hdr, mech, adopted, r.Header.Get(SubmissionIDHeader), shardAggregate)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (c *Collector) serveAggregate(w http.ResponseWriter) {
	c.mu.Lock()
	if c.mech == nil {
		c.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("collector has no mechanism yet"))
		return
	}
	blob, err := c.agg.MarshalBinary()
	var hdr []byte
	if c.pipeline != nil {
		hdr, _ = json.Marshal(c.pipeline)
	}
	c.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if hdr != nil {
		w.Header().Set(PipelineHeader, string(hdr))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// handleEstimate serves the current histogram, refreshing first if new
// shards arrived since the last decode — so the response always reflects
// every merged submission.
func (c *Collector) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	cur, err := c.refresh(r.Context())
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	est := cur.est
	c.mu.Lock()
	resp := EstimateResponse{
		Scheme:     c.mech.Scheme(),
		Generation: cur.gen,
		Reports:    cur.n,
		D:          est.Dom.D,
		Domain:     DomainSpec{MinX: est.Dom.MinX, MinY: est.Dom.MinY, Side: est.Dom.Side},
		Mass:       est.Mass,
		Iterations: cur.iters,
		Warm:       cur.warm,
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, &resp)
}

func (c *Collector) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	c.mu.Lock()
	stats := c.stats
	c.mu.Unlock()
	if c.store != nil {
		ds := c.store.Stats()
		stats.Durability = &ds
	}
	writeJSON(w, http.StatusOK, &stats)
}

// WriteJSON writes v as the JSON response body — the envelope helper
// shared by the collector and fleet-supervisor handlers.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// WriteError writes the wire error envelope both tiers answer with.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, &errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) { WriteJSON(w, status, v) }

func writeError(w http.ResponseWriter, status int, err error) { WriteError(w, status, err) }
