package collector

import (
	"fmt"

	"dpspatial/internal/durable"
	"dpspatial/internal/grid"
)

// The collector's wire formats are the ones the CLI pipeline already
// ships on disk and over pipes: line-oriented JSON report streams
// (opened by a Pipeline header line) and the deterministic DPA1/DPA2
// binary aggregate encodings of internal/fo. The HTTP service adds no
// new encoding — it frames the existing ones:
//
//	POST /v1/report     body = a reports stream (header line + NDJSON reports)
//	POST /v1/aggregate  body = a DPA1/DPA2 blob (octet-stream);
//	                    optional X-Dpspatial-Pipeline header = Pipeline JSON
//	GET  /v1/aggregate  body = the merged canonical aggregate as a DPA2 blob
//	GET  /v1/estimate   body = EstimateResponse JSON
//	GET  /v1/stats      body = Stats JSON
//	GET  /healthz       body = health JSON
const (
	// ReportsFormat marks a report stream: one Pipeline header line, then
	// one JSON-encoded fo.Report per line.
	ReportsFormat = "dpspatial-reports/1"
	// AggregateFormat marks an aggregate envelope file: a single JSON
	// object holding a Pipeline plus the JSON-encoded aggregate.
	AggregateFormat = "dpspatial-aggregate/1"
	// PipelineHeader is the HTTP header that carries a JSON-encoded
	// Pipeline alongside a binary aggregate submission, so a collector
	// started without a mechanism can adopt one from the first shard.
	PipelineHeader = "X-Dpspatial-Pipeline"
	// SubmissionIDHeader carries a submission's idempotency ID: retries
	// of the same logical shard reuse the ID, and collectors and
	// supervisors answer a replay with the original ack instead of
	// merging twice. The Client generates one per submission call.
	SubmissionIDHeader = "X-Dpspatial-Submission-Id"
	// SubmissionStateHeader, set to SubmissionStateUnknown on an error
	// response, marks a refusal whose submission MAY still have merged
	// (a lost member answer, a concurrent in-flight attempt). A
	// supervisor one tier up must not fail such a submission over to
	// another member — only a retry of the same ID is safe.
	SubmissionStateHeader  = "X-Dpspatial-Submission-State"
	SubmissionStateUnknown = "unknown"
)

// DomainSpec is the JSON shape of a square grid domain.
type DomainSpec struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	Side float64 `json:"side"`
}

// Pipeline is the metadata line shared by report streams and aggregate
// envelopes: everything a downstream stage needs to aggregate compatibly
// and rebuild the estimator. It is the same framing cmd/damctl has
// always written; the collector reuses it as the HTTP wire contract.
type Pipeline struct {
	Format string     `json:"format"`
	Mech   string     `json:"mech"`
	D      int        `json:"d"`
	Eps    float64    `json:"eps"`
	EpsGeo float64    `json:"epsGeo,omitempty"` // SEM-Geo-I calibrated budget
	Scheme string     `json:"scheme"`
	Shape  []int      `json:"shape"`
	Domain DomainSpec `json:"domain"`
}

// GridDomain rebuilds the grid domain the pipeline reports over.
func (p *Pipeline) GridDomain() (grid.Domain, error) {
	return grid.NewDomain(p.Domain.MinX, p.Domain.MinY, p.Domain.Side, p.D)
}

// Compatible reports whether two pipelines describe the same report
// scheme and estimator configuration.
func (p *Pipeline) Compatible(q *Pipeline) error {
	if p.Scheme != q.Scheme {
		return fmt.Errorf("scheme %q does not match %q", q.Scheme, p.Scheme)
	}
	if p.Mech != q.Mech || p.D != q.D || p.Eps != q.Eps || p.EpsGeo != q.EpsGeo || p.Domain != q.Domain {
		return fmt.Errorf("pipeline metadata does not match")
	}
	return nil
}

// SubmitResponse acknowledges an accepted shard submission.
type SubmitResponse struct {
	// Scheme is the report scheme the collector is locked to.
	Scheme string `json:"scheme"`
	// Reports is the number of reports the submitted shard carried.
	Reports float64 `json:"reports"`
	// TotalReports is the report count of the merged canonical aggregate
	// after this submission.
	TotalReports float64 `json:"totalReports"`
	// Generation counts accepted submissions; it names the aggregate
	// state an estimate was decoded from. A fleet supervisor reports its
	// own routed-submission count here.
	Generation uint64 `json:"generation"`
	// TraceID is the distributed trace ID of the request that first
	// merged this submission — the key into GET /v1/traces at every
	// tier the submission crossed. A replayed (Duplicate) ack carries
	// the ORIGINAL submission's trace ID, whose trace holds the merge
	// spans; empty on collectors running with tracing disabled.
	TraceID string `json:"traceId,omitempty"`
	// Member, set only by a fleet supervisor, is the base URL of the
	// collector the submission was routed to.
	Member string `json:"member,omitempty"`
	// Duplicate marks a replayed submission ID: the shard had already
	// merged, and this ack repeats the original one.
	Duplicate bool `json:"duplicate,omitempty"`
}

// AckLog is a FIFO-bounded idempotency log: the acks of the most recent
// submissions, keyed by submission ID. Collectors and supervisors
// consult it so a retried shard — same ID, replayed after a lost
// response — merges exactly once. The bound caps memory; a retry
// arriving after more than windowSize newer submissions would re-merge,
// which at that depth means the client waited far past any sane backoff.
type AckLog struct {
	acks  map[string]SubmitResponse
	order []string
	cap   int
}

// NewAckLog returns a log remembering the last windowSize acks.
func NewAckLog(windowSize int) *AckLog {
	return &AckLog{acks: make(map[string]SubmitResponse), cap: windowSize}
}

// Get returns the remembered ack for id, marked as a duplicate.
func (l *AckLog) Get(id string) (SubmitResponse, bool) {
	if id == "" {
		return SubmitResponse{}, false
	}
	resp, ok := l.acks[id]
	if ok {
		resp.Duplicate = true
	}
	return resp, ok
}

// Entries returns the remembered acks in insertion order, oldest first
// — the serialization order a durable snapshot preserves so a restored
// log evicts in the same FIFO order as the original.
func (l *AckLog) Entries() []AckLogEntry {
	out := make([]AckLogEntry, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, AckLogEntry{ID: id, Resp: l.acks[id]})
	}
	return out
}

// AckLogEntry is one remembered submission ack.
type AckLogEntry struct {
	ID   string
	Resp SubmitResponse
}

// Put remembers the ack for id, evicting the oldest entry past the cap.
func (l *AckLog) Put(id string, resp SubmitResponse) {
	if id == "" {
		return
	}
	if _, exists := l.acks[id]; !exists {
		l.order = append(l.order, id)
		if len(l.order) > l.cap {
			delete(l.acks, l.order[0])
			l.order = l.order[1:]
		}
	}
	l.acks[id] = resp
}

// EstimateResponse is the JSON envelope GET /v1/estimate serves. Mass is
// JSON-marshalled by Go with the shortest round-tripping representation,
// so the decoded histogram is bit-identical to the server's.
type EstimateResponse struct {
	Scheme     string     `json:"scheme"`
	Generation uint64     `json:"generation"`
	Reports    float64    `json:"reports"`
	D          int        `json:"d"`
	Domain     DomainSpec `json:"domain"`
	Mass       []float64  `json:"mass"`
	// Iterations is the EM iteration count of the decode that produced
	// this estimate; Warm reports whether it was warm-started from the
	// previous generation's estimate.
	Iterations int  `json:"iterations"`
	Warm       bool `json:"warm"`
}

// Histogram rebuilds the estimate as a grid histogram.
func (e *EstimateResponse) Histogram() (*grid.Hist2D, error) {
	dom, err := grid.NewDomain(e.Domain.MinX, e.Domain.MinY, e.Domain.Side, e.D)
	if err != nil {
		return nil, err
	}
	return grid.HistFromMass(dom, e.Mass)
}

// Stats is the JSON body of GET /v1/stats.
type Stats struct {
	// Scheme is empty until the collector adopts a mechanism.
	Scheme string `json:"scheme"`
	// Generation counts accepted shard submissions.
	Generation uint64 `json:"generation"`
	// AggregateShards counts accepted POST /v1/aggregate submissions,
	// ReportShards accepted POST /v1/report streams, and
	// DuplicateShards replayed submission IDs answered from the
	// idempotency log without merging.
	AggregateShards uint64 `json:"aggregateShards"`
	ReportShards    uint64 `json:"reportShards"`
	DuplicateShards uint64 `json:"duplicateShards,omitempty"`
	// Reports is the total report count absorbed into the canonical
	// aggregate.
	Reports float64 `json:"reports"`
	// DecodeCounters is the per-decode accounting (cold/warm decodes,
	// iterations saved), shared with the fleet supervisor's stats.
	DecodeCounters
	// EstimateGeneration is the generation the served estimate was
	// decoded from (0 = no estimate yet).
	EstimateGeneration uint64 `json:"estimateGeneration"`
	// CadenceMillis is the configured background merge cadence
	// (0 = refresh only on demand).
	CadenceMillis int64 `json:"cadenceMillis"`
	// Durability reports the snapshot/WAL counters of a collector
	// running with a durable store (nil when running in-memory only):
	// records replayed at the last recovery, snapshot age, recovery
	// duration — the operator surface for recovery health.
	Durability *durable.Stats `json:"durability,omitempty"`
}

// DecodeCounters is the estimate-decode accounting block the collector
// and fleet supervisor stats envelopes embed, so the iterations-saved
// arithmetic cannot diverge between the tiers.
type DecodeCounters struct {
	// Estimates counts EM decodes run (cold and warm); WarmEstimates the
	// warm-started subset.
	Estimates     uint64 `json:"estimates"`
	WarmEstimates uint64 `json:"warmEstimates"`
	// LastIterations is the EM iteration count of the most recent decode;
	// ColdBaselineIterations the count of the first (cold) decode.
	LastIterations         int `json:"lastIterations"`
	ColdBaselineIterations int `json:"coldBaselineIterations"`
	// IterationsSaved accumulates, over the warm refreshes, how many EM
	// iterations the warm start saved relative to the cold baseline
	// decode — the dividend of incremental re-estimation.
	IterationsSaved uint64 `json:"iterationsSaved"`
}

// Account records one decode's outcome in the counters.
func (d *DecodeCounters) Account(iters int, warm bool) {
	d.Estimates++
	d.LastIterations = iters
	if warm {
		d.WarmEstimates++
		if saved := d.ColdBaselineIterations - iters; saved > 0 {
			d.IterationsSaved += uint64(saved)
		}
	} else if d.ColdBaselineIterations == 0 {
		d.ColdBaselineIterations = iters
	}
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}
