// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each figure benchmark regenerates the corresponding series
// at a reduced workload scale (the shapes, not the runtimes, are the
// reproduction target — set -scale via experiments.Config for full-size
// runs through cmd/damctl) and reports a representative W₂ as a custom
// metric so regressions in estimation quality show up next to ns/op.
//
// Micro-benchmarks for the core operations (perturbation throughput,
// channel construction, EM decoding, exact and approximate optimal
// transport) follow the figure benches.
package dpspatial_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/em"
	"dpspatial/internal/experiments"
	"dpspatial/internal/fo"
	"dpspatial/internal/lp"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
	"dpspatial/internal/semgeoi"
	"dpspatial/internal/transport"
)

// BenchmarkRunnerInfo embeds the runner's parallelism in every benchmark
// record as custom metrics, so 1-core and multi-core BENCH_*.json runs
// are distinguishable at a glance (BENCH_pr1..3 were all recorded at
// GOMAXPROCS=1, leaving the parallel paths unmeasured).
func BenchmarkRunnerInfo(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
}

// benchConfig keeps figure benches in the seconds range; the series
// shapes already emerge at this scale.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:         0.002,
		Repeats:       1,
		Seed:          42,
		MaxPoints:     2000,
		LPCalibration: false, // calibration is benchmarked separately
	}
}

func reportLastW2(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	if len(fig.Series) == 0 {
		b.Fatal("figure has no series")
	}
	last := fig.Series[len(fig.Series)-1]
	if len(last.Y) == 0 {
		b.Fatal("series has no points")
	}
	b.ReportMetric(last.Y[len(last.Y)-1], "W2")
}

// BenchmarkTable3Datasets regenerates Table III (dataset inventory).
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Settings regenerates Table IV (parameter grid).
func BenchmarkTable4Settings(b *testing.B) {
	s := experiments.NewSuite(benchConfig())
	for i := 0; i < b.N; i++ {
		if t := s.Table4(); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5TrajectorySettings regenerates Table V.
func BenchmarkTable5TrajectorySettings(b *testing.B) {
	s := experiments.NewSuite(benchConfig())
	for i := 0; i < b.N; i++ {
		if t := s.Table5(); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig8RadiusSweep regenerates Figure 8 (W₂ vs radius b).
func BenchmarkFig8RadiusSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		fig, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		reportLastW2(b, fig)
	}
}

// BenchmarkFig9SmallD regenerates Figure 9(a–e): one panel per dataset,
// all five mechanisms, exact LP Wasserstein.
func BenchmarkFig9SmallD(b *testing.B) {
	for _, dataset := range experiments.DatasetNames() {
		b.Run(dataset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSuite(benchConfig())
				fig, err := s.Fig9SmallD(dataset)
				if err != nil {
					b.Fatal(err)
				}
				reportLastW2(b, fig)
			}
		})
	}
}

// BenchmarkFig9LargeD regenerates Figure 9(f–j) (SEM-Geo-I vs DAM,
// Sinkhorn). One representative dataset per run keeps the suite's total
// time bounded; pass -bench 'Fig9LargeD' -benchtime 1x with a larger
// scale for full panels.
func BenchmarkFig9LargeD(b *testing.B) {
	for _, dataset := range []string{"Crime", "SZipf"} {
		b.Run(dataset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSuite(benchConfig())
				fig, err := s.Fig9LargeD(dataset)
				if err != nil {
					b.Fatal(err)
				}
				reportLastW2(b, fig)
			}
		})
	}
}

// BenchmarkFig9SmallEps regenerates Figure 9(k–o).
func BenchmarkFig9SmallEps(b *testing.B) {
	for _, dataset := range []string{"NYC", "Normal"} {
		b.Run(dataset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSuite(benchConfig())
				fig, err := s.Fig9SmallEps(dataset)
				if err != nil {
					b.Fatal(err)
				}
				reportLastW2(b, fig)
			}
		})
	}
}

// BenchmarkFig9LargeEps regenerates Figure 9(p–t).
func BenchmarkFig9LargeEps(b *testing.B) {
	for _, dataset := range []string{"MNormal"} {
		b.Run(dataset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSuite(benchConfig())
				fig, err := s.Fig9LargeEps(dataset)
				if err != nil {
					b.Fatal(err)
				}
				reportLastW2(b, fig)
			}
		})
	}
}

// BenchmarkFig13FullDomain regenerates the Appendix-C full-domain Crime
// panels.
func BenchmarkFig13FullDomain(b *testing.B) {
	for _, panel := range []string{"a", "b", "c", "d"} {
		b.Run(panel, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSuite(benchConfig())
				fig, err := s.Fig13(panel)
				if err != nil {
					b.Fatal(err)
				}
				reportLastW2(b, fig)
			}
		})
	}
}

// BenchmarkFig14TrajectoryD regenerates Figure 14(a).
func BenchmarkFig14TrajectoryD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		fig, err := s.Fig14a()
		if err != nil {
			b.Fatal(err)
		}
		reportLastW2(b, fig)
	}
}

// BenchmarkFig14TrajectoryEps regenerates Figure 14(b).
func BenchmarkFig14TrajectoryEps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		fig, err := s.Fig14b()
		if err != nil {
			b.Fatal(err)
		}
		reportLastW2(b, fig)
	}
}

// --- Micro-benchmarks for the core operations ---

func benchDomain(b *testing.B, d int) dpspatial.Domain {
	b.Helper()
	dom, err := dpspatial.NewDomain(0, 0, float64(d), d)
	if err != nil {
		b.Fatal(err)
	}
	return dom
}

// BenchmarkDAMChannelBuild measures DAM construction (footprint +
// channel) at the paper's default d=15, eps=3.5.
func BenchmarkDAMChannelBuild(b *testing.B) {
	dom := benchDomain(b, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sam.NewDAM(dom, 3.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAMPerturb measures single-report randomisation throughput
// via alias samplers (the per-user cost of GridAreaResponse).
func BenchmarkDAMPerturb(b *testing.B) {
	dom := benchDomain(b, 15)
	m, err := sam.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	samplers, err := m.Samplers()
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samplers[i%len(samplers)].Draw(r)
	}
}

// BenchmarkEMEstimate measures the PostProcess (EM) step on DAM's
// structured (uniform-plus-sparse) channel at d=15 — each sweep costs
// O(In + Out + nnz) instead of the dense O(In·Out).
func BenchmarkEMEstimate(b *testing.B) {
	dom := benchDomain(b, 15)
	m, err := sam.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	counts := make([]float64, m.NumOutputs())
	for i := range counts {
		counts[i] = float64(r.Intn(100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Estimate(m.Linear(), counts, &em.Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// semGeoIDecodeWorkload builds the SEM-Geo-I mechanism at side d with a
// deterministic count vector — the shared workload of the dense-channel
// EM benchmarks below.
func semGeoIDecodeWorkload(b *testing.B, d int) (*semgeoi.Mechanism, []float64) {
	b.Helper()
	dom := benchDomain(b, d)
	m, err := semgeoi.New(dom, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	counts := make([]float64, m.NumOutputs())
	for i := range counts {
		counts[i] = float64(r.Intn(100))
	}
	return m, counts
}

// BenchmarkEMEstimateDense measures the dense-channel-family decode
// (SEM-Geo-I at d=15) through the mechanism's operative channel — the
// convolutional Toeplitz/FFT representation when calibration admits it.
// Before the convolutional engine this decode ran O(d⁴) per EM sweep on
// the materialised matrix; the spectral path is O(d² log d).
func BenchmarkEMEstimateDense(b *testing.B) {
	m, counts := semGeoIDecodeWorkload(b, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Estimate(m.Linear(), counts, &em.Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMEstimateDenseMaterialized is the same decode through the
// materialised dense matrix — the pre-convolutional baseline the
// BenchmarkEMEstimateDense speedup is measured against.
func BenchmarkEMEstimateDenseMaterialized(b *testing.B) {
	m, counts := semGeoIDecodeWorkload(b, 15)
	dense := m.Channel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Estimate(dense, counts, &em.Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMEstimateLargeD measures the dense-channel-family decode at
// the paper's large-domain setting (SEM-Geo-I at d=40, so In=1600): the
// regime where the dense matrix alone is In·Out ≈ 2.6M float64s and every
// EM iteration O(d⁴) — the last dense-decode gap the convolutional
// engine closes.
func BenchmarkEMEstimateLargeD(b *testing.B) {
	m, counts := semGeoIDecodeWorkload(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Estimate(m.Linear(), counts, &em.Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMEstimateLargeDMaterialized is the d=40 decode through the
// materialised dense matrix — the pre-convolutional baseline the
// BenchmarkEMEstimateLargeD speedup is measured against.
func BenchmarkEMEstimateLargeDMaterialized(b *testing.B) {
	m, counts := semGeoIDecodeWorkload(b, 40)
	dense := m.Channel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Estimate(dense, counts, &em.Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMEstimateStructuredLargeD measures the uniform-plus-sparse
// structured decode at d=40 (DAM's channel) — the workload the
// pre-PR-7 BenchmarkEMEstimateLargeD timed, kept for series continuity.
func BenchmarkEMEstimateStructuredLargeD(b *testing.B) {
	dom := benchDomain(b, 40)
	m, err := sam.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	counts := make([]float64, m.NumOutputs())
	for i := range counts {
		counts[i] = float64(r.Intn(100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Estimate(m.Linear(), counts, &em.Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Channel-sweep micro-benchmarks: one Forward application per
// representation, on same-size d=40 workloads, so the dense-vs-structured
// ratio is read directly off adjacent ns/op lines ---

func sweepDist(n int) []float64 {
	p := make([]float64, n)
	r := rng.New(11)
	sum := 0.0
	for i := range p {
		p[i] = r.Float64() + 0.01
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// BenchmarkChannelForwardDense sweeps the materialised SEM-Geo-I d=40
// matrix once: the O(d⁴) baseline row of the representation comparison.
func BenchmarkChannelForwardDense(b *testing.B) {
	m, _ := semGeoIDecodeWorkload(b, 40)
	dense := m.Channel()
	p := sweepDist(m.NumInputs())
	out := make([]float64, m.NumOutputs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.Forward(p, out)
	}
}

// BenchmarkChannelForwardConv sweeps the same SEM-Geo-I d=40 channel in
// its convolutional representation: one O(d² log d) FFT convolution.
func BenchmarkChannelForwardConv(b *testing.B) {
	m, _ := semGeoIDecodeWorkload(b, 40)
	conv, ok := m.Linear().(*fo.ConvChannel)
	if !ok {
		b.Fatalf("channel is %T, want *fo.ConvChannel", m.Linear())
	}
	p := sweepDist(m.NumInputs())
	out := make([]float64, m.NumOutputs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(p, out)
	}
}

// BenchmarkChannelForwardUniformSparse sweeps DAM's uniform-plus-sparse
// d=40 channel once: the O(n + nnz) structured row of the comparison.
func BenchmarkChannelForwardUniformSparse(b *testing.B) {
	dom := benchDomain(b, 40)
	m, err := sam.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	p := sweepDist(m.NumInputs())
	out := make([]float64, m.NumOutputs())
	lin := m.Linear()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.Forward(p, out)
	}
}

// BenchmarkEMEstimateWarm measures the incremental decode: EM on a
// merged aggregate warm-started from the pre-merge estimate.
func BenchmarkEMEstimateWarm(b *testing.B) {
	dom := benchDomain(b, 15)
	m, err := sam.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	counts := make([]float64, m.NumOutputs())
	for i := range counts {
		counts[i] = float64(r.Intn(100))
	}
	init, err := em.Estimate(m.Linear(), counts, &em.Options{MaxIter: 100})
	if err != nil {
		b.Fatal(err)
	}
	merged := make([]float64, len(counts))
	for i := range merged {
		merged[i] = counts[i] + float64(r.Intn(100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Estimate(m.Linear(), merged, &em.Options{MaxIter: 100, Init: init}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkW2Exact measures the transportation-LP Wasserstein on a 10×10
// grid (Equation 17).
func BenchmarkW2Exact(b *testing.B) {
	dom := benchDomain(b, 10)
	r := rng.New(3)
	a := dpspatial.HistFromPoints(dom, nil)
	c := dpspatial.HistFromPoints(dom, nil)
	for i := range a.Mass {
		a.Mass[i] = r.Float64()
		c.Mass[i] = r.Float64()
	}
	a.Normalize()
	c.Normalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.W2Exact(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkW2Sinkhorn measures the entropy-regularised solver at the
// paper's large-d setting (15×15).
func BenchmarkW2Sinkhorn(b *testing.B) {
	dom := benchDomain(b, 15)
	r := rng.New(4)
	a := dpspatial.HistFromPoints(dom, nil)
	c := dpspatial.HistFromPoints(dom, nil)
	for i := range a.Mass {
		a.Mass[i] = r.Float64()
		c.Mass[i] = r.Float64()
	}
	a.Normalize()
	c.Normalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.W2Sinkhorn(a, c, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlicedWasserstein measures the Radon-projection sliced
// distance of Section V.
func BenchmarkSlicedWasserstein(b *testing.B) {
	dom := benchDomain(b, 15)
	r := rng.New(5)
	a := dpspatial.HistFromPoints(dom, nil)
	c := dpspatial.HistFromPoints(dom, nil)
	for i := range a.Mass {
		a.Mass[i] = r.Float64()
		c.Mass[i] = r.Float64()
	}
	a.Normalize()
	c.Normalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.SlicedW(a, c, 2, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportSimplex measures the raw LP solver on a dense random
// 50×50 instance.
func BenchmarkTransportSimplex(b *testing.B) {
	const n = 50
	r := rng.New(6)
	supply := make([]float64, n)
	demand := make([]float64, n)
	var st, dt float64
	for i := 0; i < n; i++ {
		supply[i] = r.Float64() + 0.01
		demand[i] = r.Float64() + 0.01
		st += supply[i]
		dt += demand[i]
	}
	for i := range demand {
		demand[i] *= st / dt
	}
	cost := make([]float64, n*n)
	for i := range cost {
		cost[i] = r.Float64() * 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(supply, demand, func(i, j int) float64 { return cost[i*n+j] }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatePipeline measures the end-to-end public API on 20k
// users.
func BenchmarkEstimatePipeline(b *testing.B) {
	r := rng.New(7)
	pts := make([]dpspatial.Point, 20000)
	for i := range pts {
		pts[i] = dpspatial.Point{X: r.NormFloat64(), Y: r.NormFloat64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpspatial.Estimate(pts, 10, 3.5, dpspatial.WithSeed(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (the DESIGN.md design-choice studies) ---

// BenchmarkAblationShrinkage quantifies the border-shrinkage gain
// (DAM vs DAM-NS) across all datasets.
func BenchmarkAblationShrinkage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := s.AblationShrinkage(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPostprocess compares EM against EMS decoding.
func BenchmarkAblationPostprocess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := s.AblationPostprocess("SZipf"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBaselines runs the widened Table I design-space
// comparison (CFO, MDSW, AHEAD, PlanarLaplace, DAM).
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := s.AblationBaselines("Normal", 8, 3.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQueryExperiment measures the Section II composition
// claim: range-query MSE through DAM, AHEAD and CFO estimates.
func BenchmarkRangeQueryExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := s.RangeQueryExperiment("SZipf", 8, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectParallel measures the fan-out collection path on 100k
// users at d=15.
func BenchmarkCollectParallel(b *testing.B) {
	dom := benchDomain(b, 15)
	m, err := sam.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	truth := make([]float64, m.NumInputs())
	r := rng.New(8)
	for i := 0; i < 100000; i++ {
		truth[r.Intn(len(truth))]++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CollectParallel(truth, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorPipeline measures the networked report lifecycle:
// two pre-encoded DPA2 shard blobs POSTed to a fresh in-process
// collector over HTTP loopback, then the merged estimate fetched back
// (cold EM decode included) — the per-epoch cost of `damctl serve`.
func BenchmarkCollectorPipeline(b *testing.B) {
	dom := benchDomain(b, 10)
	m, err := dpspatial.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := dpspatial.AsReporting(m)
	if err != nil {
		b.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, nil)
	r := rng.New(9)
	for i := 0; i < 20000; i++ {
		truth.Mass[r.Intn(len(truth.Mass))]++
	}
	blobs := make([][]byte, 2)
	rr := dpspatial.NewRand(10)
	for s := range blobs {
		shard := rm.NewAggregate()
		if err := dpspatial.AccumulateHist(m, shard, truth, rr); err != nil {
			b.Fatal(err)
		}
		if blobs[s], err = shard.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := collector.New(collector.Config{Mechanism: rm})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(c)
		client := dpspatial.NewCollectorClient(srv.URL)
		for _, blob := range blobs {
			if _, err := client.SubmitAggregateBlob(ctx, blob, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := client.Estimate(ctx); err != nil {
			b.Fatal(err)
		}
		srv.Close()
	}
}

// BenchmarkQueryPipeline measures the analyst tier end to end: two
// pre-encoded DPA2 shard blobs POSTed to a fresh in-process collector
// over HTTP loopback, then a range and a top-k answer fetched from GET
// /v1/query (the range decode is cold per iteration; the top-k reuses
// the generation-cached estimate) — the per-epoch cost of serving live
// queries on top of BenchmarkCollectorPipeline's merge work.
func BenchmarkQueryPipeline(b *testing.B) {
	dom := benchDomain(b, 10)
	m, err := dpspatial.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := dpspatial.AsReporting(m)
	if err != nil {
		b.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, nil)
	r := rng.New(9)
	for i := 0; i < 20000; i++ {
		truth.Mass[r.Intn(len(truth.Mass))]++
	}
	blobs := make([][]byte, 2)
	rr := dpspatial.NewRand(10)
	for s := range blobs {
		shard := rm.NewAggregate()
		if err := dpspatial.AccumulateHist(m, shard, truth, rr); err != nil {
			b.Fatal(err)
		}
		if blobs[s], err = shard.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := collector.New(collector.Config{Mechanism: rm})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(c)
		client := dpspatial.NewCollectorClient(srv.URL)
		for _, blob := range blobs {
			if _, err := client.SubmitAggregateBlob(ctx, blob, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := client.QueryRange(ctx, 2, 2, 7, 7); err != nil {
			b.Fatal(err)
		}
		if _, err := client.QueryTopK(ctx, 10); err != nil {
			b.Fatal(err)
		}
		srv.Close()
	}
}

// BenchmarkFleetPipeline measures the fleet-supervised lifecycle: two
// pre-encoded DPA2 shard blobs POSTed to a supervisor fronting two
// in-process collectors (routed round-robin over HTTP loopback), then
// the hierarchically merged fleet estimate fetched back (member
// aggregate pulls + cold EM decode included) — the per-epoch cost of
// `damctl supervise` relative to BenchmarkCollectorPipeline's single
// collector.
func BenchmarkFleetPipeline(b *testing.B) {
	dom := benchDomain(b, 10)
	m, err := dpspatial.NewDAM(dom, 3.5)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := dpspatial.AsReporting(m)
	if err != nil {
		b.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, nil)
	r := rng.New(9)
	for i := 0; i < 20000; i++ {
		truth.Mass[r.Intn(len(truth.Mass))]++
	}
	blobs := make([][]byte, 2)
	rr := dpspatial.NewRand(10)
	for s := range blobs {
		shard := rm.NewAggregate()
		if err := dpspatial.AccumulateHist(m, shard, truth, rr); err != nil {
			b.Fatal(err)
		}
		if blobs[s], err = shard.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memberURLs := make([]string, 2)
		memberSrvs := make([]*httptest.Server, 2)
		for j := range memberURLs {
			c, err := collector.New(collector.Config{Mechanism: rm})
			if err != nil {
				b.Fatal(err)
			}
			memberSrvs[j] = httptest.NewServer(c)
			memberURLs[j] = memberSrvs[j].URL
		}
		_, sup, err := dpspatial.NewFleetPipeline("DAM", dom, 3.5, memberURLs)
		if err != nil {
			b.Fatal(err)
		}
		supSrv := httptest.NewServer(sup)
		client := dpspatial.NewCollectorClient(supSrv.URL)
		for _, blob := range blobs {
			if _, err := client.SubmitAggregateBlob(ctx, blob, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := client.Estimate(ctx); err != nil {
			b.Fatal(err)
		}
		supSrv.Close()
		sup.Close()
		for _, srv := range memberSrvs {
			srv.Close()
		}
	}
}

// BenchmarkLocalPrivacyCalibration measures the LDP↔Geo-I budget
// calibration of Section VII-B at d=10.
func BenchmarkLocalPrivacyCalibration(b *testing.B) {
	dom := benchDomain(b, 10)
	for i := 0; i < b.N; i++ {
		if _, err := dpspatial.CalibrateSEMGeoI(dom, 3.5); err != nil {
			b.Fatal(err)
		}
	}
}
