// Package dpspatial estimates spatial (2-D) distributions under Local
// Differential Privacy. It implements the Disk Area Mechanism (DAM) of
// "Numerical Estimation of Spatial Distributions under Differential
// Privacy" (ICDE 2025) together with the mechanisms it is evaluated
// against (HUEM, DAM-NS, MDSW, SEM-Geo-I), the optimal-transport metrics
// used to score them, and a one-call pipeline for the common case.
//
// Quick start:
//
//	points := ...                     // []dpspatial.Point from your users
//	est, err := dpspatial.Estimate(points, 15, 3.5, dpspatial.WithSeed(1))
//	// est is the DP estimate of the point distribution on a 15×15 grid.
//
// Lower-level control: build a Domain, bucketise with HistFromPoints,
// construct a mechanism (NewDAM and friends), and drive
// Mechanism.EstimateHist yourself. Every mechanism satisfies ε-LDP over
// grid cells; privacy is enforced per report, and post-processing (EM)
// cannot weaken it.
//
// Distributed control: every mechanism also implements
// ReportingMechanism — the explicit client / aggregator / estimator
// lifecycle (see lifecycle.go). Encode one user's Report on a device,
// Add reports into sharded Aggregates, Merge the shards in any order,
// and decode once with EstimateFromAggregate; EstimateHist is a thin
// in-process wrapper over the same stages.
package dpspatial

import (
	"fmt"
	"strings"
	"sync"

	"dpspatial/internal/baselines"
	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/localprivacy"
	"dpspatial/internal/mdsw"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
	"dpspatial/internal/semgeoi"
	"dpspatial/internal/trajectory"
	"dpspatial/internal/transport"
)

// Point is a location in the plane.
type Point = geom.Point

// Cell is a grid cell index.
type Cell = geom.Cell

// Domain is a square spatial region divided into d×d cells.
type Domain = grid.Domain

// Histogram is a distribution (or count histogram) over a Domain's cells.
type Histogram = grid.Hist2D

// Rand is the deterministic random source every mechanism consumes.
type Rand = rng.RNG

// NewRand returns a deterministic random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewDomain builds a square domain of side `side` anchored at (minX,
// minY) with d×d cells.
func NewDomain(minX, minY, side float64, d int) (Domain, error) {
	return grid.NewDomain(minX, minY, side, d)
}

// DomainOver returns the smallest square domain with d×d cells covering
// all points.
func DomainOver(points []Point, d int) (Domain, error) {
	return grid.SquareDomain(points, d)
}

// HistFromPoints bucketises points into a count histogram over the
// domain.
func HistFromPoints(dom Domain, points []Point) *Histogram {
	return grid.HistFromPoints(dom, points)
}

// Mechanism is a private spatial distribution estimator: a frequency
// oracle whose EstimateHist runs the full collect-perturb-estimate
// pipeline of Algorithm 1 on a true count histogram.
type Mechanism interface {
	Name() string
	EstimateHist(truth *Histogram, r *Rand) (*Histogram, error)
}

// Option configures mechanism construction.
type Option func(*options)

type options struct {
	bHat       *int
	smoothing  bool
	workers    *int
	estWorkers *int
}

// WithRadius overrides DAM/HUEM's discrete high-probability radius b̂ (in
// cells). The default is the paper's optimal ⌊b̌⌋ for the grid and budget.
func WithRadius(cells int) Option {
	return func(o *options) { o.bHat = &cells }
}

// WithSmoothing enables 2-D EM smoothing in post-processing.
func WithSmoothing() Option {
	return func(o *options) { o.smoothing = true }
}

// WithCollectWorkers fans the per-user collection step of EstimateHist
// out across n workers (0 = all cores). The default of 1 collects
// sequentially on the caller's RNG stream; any other value draws
// deterministic per-worker streams instead, so estimates are reproducible
// for a fixed seed and worker count.
func WithCollectWorkers(n int) Option {
	return func(o *options) { o.workers = &n }
}

// WithEstimateWorkers fans the EM decoding step of estimation out across
// n row-block workers (0 = all cores). Unlike collection fan-out, the
// parallel EM engine is deterministic: the estimate is byte-identical
// for every worker count ≥ 2, though it may differ from the sequential
// (n = 1, the default) engine in the last float64 bits. Supported by the
// channel-matrix mechanisms (DAM family and SEM-Geo-I).
func WithEstimateWorkers(n int) Option {
	return func(o *options) { o.estWorkers = &n }
}

func (o *options) samOpts() []sam.Option {
	var out []sam.Option
	if o.bHat != nil {
		out = append(out, sam.WithBHat(*o.bHat))
	}
	if o.smoothing {
		out = append(out, sam.WithSmoothing())
	}
	if o.workers != nil {
		out = append(out, sam.WithWorkers(*o.workers))
	}
	if o.estWorkers != nil {
		out = append(out, sam.WithEstimateWorkers(*o.estWorkers))
	}
	return out
}

func (o *options) mdswOpts() []mdsw.Option {
	var out []mdsw.Option
	if o.workers != nil {
		out = append(out, mdsw.WithWorkers(*o.workers))
	}
	return out
}

func (o *options) semOpts() []semgeoi.Option {
	var out []semgeoi.Option
	if o.workers != nil {
		out = append(out, semgeoi.WithWorkers(*o.workers))
	}
	if o.estWorkers != nil {
		out = append(out, semgeoi.WithEstimateWorkers(*o.estWorkers))
	}
	return out
}

func collect(opts []Option) *options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return &o
}

// NewDAM builds the Disk Area Mechanism — the paper's optimal SAM — over
// the domain with ε-LDP budget eps.
func NewDAM(dom Domain, eps float64, opts ...Option) (Mechanism, error) {
	return sam.NewDAM(dom, eps, collect(opts).samOpts()...)
}

// NewDAMNS builds DAM without border shrinkage (an ablation baseline).
func NewDAMNS(dom Domain, eps float64, opts ...Option) (Mechanism, error) {
	return sam.NewDAMNS(dom, eps, collect(opts).samOpts()...)
}

// NewHUEM builds the Hybrid Uniform-Exponential Mechanism.
func NewHUEM(dom Domain, eps float64, opts ...Option) (Mechanism, error) {
	return sam.NewHUEM(dom, eps, collect(opts).samOpts()...)
}

// NewMDSW builds the multi-dimensional Square Wave baseline.
func NewMDSW(dom Domain, eps float64, opts ...Option) (Mechanism, error) {
	return mdsw.NewMDSW(dom, eps, collect(opts).mdswOpts()...)
}

// NewSEMGeoI builds the Subset Exponential Mechanism under epsGeo-Geo-I
// (per cell-unit distance). Note Geo-I is a weaker guarantee than ε-LDP;
// use CalibrateSEMGeoI to choose epsGeo so it matches a DAM instance's
// local privacy.
func NewSEMGeoI(dom Domain, epsGeo float64, opts ...Option) (Mechanism, error) {
	return semgeoi.New(dom, epsGeo, collect(opts).semOpts()...)
}

// OptimalRadius returns the continuous high-probability radius b̌ that
// maximises DAM's mutual-information bound for an input square of side L
// (Section V-C of the paper).
func OptimalRadius(eps, L float64) (float64, error) {
	return sam.OptimalB(eps, L)
}

// Wasserstein2 returns the exact 2-Wasserstein distance between two
// normalised histograms (transportation LP; costs in cell units).
func Wasserstein2(a, b *Histogram) (float64, error) {
	return transport.W2Exact(a, b)
}

// Wasserstein2Sinkhorn returns the entropy-regularised approximation,
// suitable for large grids.
func Wasserstein2Sinkhorn(a, b *Histogram) (float64, error) {
	return transport.W2Sinkhorn(a, b, nil)
}

// SlicedWasserstein returns the p-sliced Wasserstein distance averaged
// over numAngles Radon projections.
func SlicedWasserstein(a, b *Histogram, p float64, numAngles int) (float64, error) {
	return transport.SlicedW(a, b, p, numAngles)
}

// LocalPrivacy evaluates the Local Privacy metric (expected Bayesian
// adversary error, Shokri et al.) of a mechanism built by this package.
// It is defined for the per-cell channel mechanisms (DAM family and
// SEM-Geo-I).
func LocalPrivacy(dom Domain, m Mechanism) (float64, error) {
	switch mech := m.(type) {
	case *sam.Mechanism:
		return localprivacy.Compute(dom, mech.Channel())
	case *semgeoi.Mechanism:
		return localprivacy.Compute(dom, mech.Channel())
	default:
		return 0, fmt.Errorf("dpspatial: local privacy is defined for DAM-family and SEM-Geo-I mechanisms, not %T", m)
	}
}

// calibrationKey identifies a SEM-Geo-I calibration result. Both the DAM
// target and the SEM-Geo-I channels depend on the domain only through its
// grid side d (all distances are in cell units), so one bisection serves
// every domain with the same (d, ε).
type calibrationKey struct {
	d   int
	eps float64
}

var (
	calibrationMu   sync.Mutex
	calibrationMemo = map[calibrationKey]float64{}
)

// CalibrateSEMGeoI finds the Geo-I budget at which SEM-Geo-I's local
// privacy equals that of DAM with budget eps on the same domain — the
// paper's apples-to-apples comparison setting. The bisection (60
// iterations, each building a full channel) runs once per (d, ε);
// repeated calls return the memoized budget.
func CalibrateSEMGeoI(dom Domain, eps float64) (float64, error) {
	key := calibrationKey{d: dom.D, eps: eps}
	calibrationMu.Lock()
	if epsGeo, ok := calibrationMemo[key]; ok {
		calibrationMu.Unlock()
		return epsGeo, nil
	}
	calibrationMu.Unlock()

	epsGeo, err := calibrateSEMGeoI(dom, eps)
	if err != nil {
		return 0, err
	}
	calibrationMu.Lock()
	calibrationMemo[key] = epsGeo
	calibrationMu.Unlock()
	return epsGeo, nil
}

func calibrateSEMGeoI(dom Domain, eps float64) (float64, error) {
	dam, err := sam.NewDAM(dom, eps)
	if err != nil {
		return 0, err
	}
	target, err := localprivacy.Compute(dom, dam.Channel())
	if err != nil {
		return 0, err
	}
	return localprivacy.Calibrate(dom, target, func(x float64) (*fo.Channel, error) {
		m, err := semgeoi.New(dom, x)
		if err != nil {
			return nil, err
		}
		return m.Channel(), nil
	}, 1e-2, 60)
}

// EstimateOption configures the one-call pipeline.
type EstimateOption func(*estimateConfig)

type estimateConfig struct {
	seed      uint64
	mechanism string
	workers   *int
	opts      []Option
}

// WithSeed fixes the pipeline's randomness (default 1).
func WithSeed(seed uint64) EstimateOption {
	return func(c *estimateConfig) { c.seed = seed }
}

// WithMechanism selects the reporting mechanism by name: "DAM" (default),
// "DAM-NS", "HUEM", "MDSW" or "SEM-Geo-I". SEM-Geo-I's Geo-I budget is
// calibrated with CalibrateSEMGeoI so its local privacy matches DAM's at
// the same ε.
func WithMechanism(name string) EstimateOption {
	return func(c *estimateConfig) { c.mechanism = name }
}

// WithOptions forwards mechanism options (radius, smoothing, collection
// workers, estimate workers).
func WithOptions(opts ...Option) EstimateOption {
	return func(c *estimateConfig) { c.opts = opts }
}

// WithWorkers fans the per-user collection step out across n workers
// (0 = all cores). Shorthand for WithOptions(WithCollectWorkers(n));
// estimates are reproducible for a fixed seed and worker count.
func WithWorkers(n int) EstimateOption {
	return func(c *estimateConfig) { c.workers = &n }
}

// EstimateMechanismNames lists the mechanisms Estimate accepts, in the
// paper's legend order.
func EstimateMechanismNames() []string {
	return []string{"DAM", "DAM-NS", "HUEM", "MDSW", "SEM-Geo-I"}
}

// MechanismNames lists every mechanism NewMechanism accepts: the
// paper's headline five, then the baseline and workload-specific
// families that ride the same report lifecycle (all of them implement
// ReportingMechanism, so any of them can serve through the collector
// and fleet tiers).
func MechanismNames() []string {
	return append(EstimateMechanismNames(),
		"CFO", "PlanarLaplace", "AHEAD", "LDPTrace", "PivotTrace")
}

// Defaults for the workload-specific mechanisms' secondary parameters —
// the paper's evaluation settings. They are part of the report scheme
// string, so mismatched pipelines are refused at adoption time.
const (
	// LDPTraceMaxLen is the trajectory length cap LDPTrace buckets over.
	LDPTraceMaxLen = 200
	// PivotTraceMaxPivots is the pivot-subsample cap PivotTrace splits
	// its budget across.
	PivotTraceMaxPivots = 4
)

// NewCFO builds the Bucket+CFO baseline: generalized randomized
// response over the d² grid cells with EM decoding.
func NewCFO(dom Domain, eps float64) (Mechanism, error) {
	return baselines.NewCFO(dom, eps)
}

// NewPlanarLaplace builds the planar Laplace mechanism of
// Geo-Indistinguishability with per-cell-unit budget epsGeo
// (a weaker guarantee than ε-LDP at the same numeric budget).
func NewPlanarLaplace(dom Domain, epsGeo float64) (Mechanism, error) {
	return baselines.NewPlanarLaplace(dom, epsGeo)
}

// NewAHEAD builds the adaptive hierarchical range-query estimator. Its
// EstimateHist returns the normalised leaf histogram; range queries are
// answered through the quadtree (rangequery.AHEAD's EstimateTree /
// EstimateTreeFromAggregate, or the collector's /v1/query endpoint).
func NewAHEAD(dom Domain, eps float64) (Mechanism, error) {
	return rangequery.NewAHEAD(dom, eps)
}

// NewLDPTrace builds the synthesis-based trajectory baseline with the
// trajectory length cap maxLen.
func NewLDPTrace(dom Domain, eps float64, maxLen int) (Mechanism, error) {
	return trajectory.NewLDPTrace(dom, eps, maxLen)
}

// NewPivotTrace builds the pivot-perturbation trajectory baseline with
// up to maxPivots pivots per trajectory.
func NewPivotTrace(dom Domain, eps float64, maxPivots int) (Mechanism, error) {
	return trajectory.NewPivotTrace(dom, eps, maxPivots)
}

// NewMechanism builds a mechanism by name over the domain with ε-LDP
// budget eps — the same construction Estimate performs internally.
// "SEM-Geo-I" calibrates its Geo-I budget with CalibrateSEMGeoI so its
// local privacy matches DAM's at the same ε; "PlanarLaplace" interprets
// eps as its per-cell-unit Geo-I budget. "LDPTrace" and "PivotTrace"
// use the paper's evaluation defaults (LDPTraceMaxLen,
// PivotTraceMaxPivots) so the report scheme is fixed by (name, d, ε)
// alone — what pipeline adoption needs.
func NewMechanism(name string, dom Domain, eps float64, opts ...Option) (Mechanism, error) {
	switch name {
	case "DAM":
		return NewDAM(dom, eps, opts...)
	case "DAM-NS":
		return NewDAMNS(dom, eps, opts...)
	case "HUEM":
		return NewHUEM(dom, eps, opts...)
	case "MDSW":
		return NewMDSW(dom, eps, opts...)
	case "SEM-Geo-I":
		epsGeo, err := CalibrateSEMGeoI(dom, eps)
		if err != nil {
			return nil, err
		}
		return NewSEMGeoI(dom, epsGeo, opts...)
	case "CFO":
		return NewCFO(dom, eps)
	case "PlanarLaplace":
		return NewPlanarLaplace(dom, eps)
	case "AHEAD":
		return NewAHEAD(dom, eps)
	case "LDPTrace":
		return NewLDPTrace(dom, eps, LDPTraceMaxLen)
	case "PivotTrace":
		return NewPivotTrace(dom, eps, PivotTraceMaxPivots)
	default:
		return nil, fmt.Errorf("dpspatial: unknown mechanism %q (accepted: %s)",
			name, strings.Join(MechanismNames(), ", "))
	}
}

// Estimate is the one-call pipeline: fit a d×d domain over the points,
// bucketise, run the selected ε-LDP mechanism for every point, and return
// the estimated (normalised) spatial distribution.
func Estimate(points []Point, d int, eps float64, opts ...EstimateOption) (*Histogram, error) {
	cfg := estimateConfig{seed: 1, mechanism: "DAM"}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers != nil {
		cfg.opts = append(cfg.opts, WithCollectWorkers(*cfg.workers))
	}
	dom, err := DomainOver(points, d)
	if err != nil {
		return nil, err
	}
	truth := HistFromPoints(dom, points)
	mech, err := NewMechanism(cfg.mechanism, dom, eps, cfg.opts...)
	if err != nil {
		return nil, err
	}
	return mech.EstimateHist(truth, NewRand(cfg.seed))
}
