package dpspatial

import (
	"math"
	"strings"
	"testing"
)

func clusterPoints(n int, cx, cy float64) []Point {
	r := NewRand(12345)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: cx + 0.3*r.NormFloat64(), Y: cy + 0.3*r.NormFloat64()}
	}
	return pts
}

func TestEstimateQuickstart(t *testing.T) {
	pts := clusterPoints(20000, 5, 5)
	est, err := Estimate(pts, 8, 4, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Total()-1) > 1e-9 {
		t.Fatalf("estimate total %v", est.Total())
	}
	// The mass should concentrate near the cluster centre cell.
	c := est.Dom.CellOf(Point{X: 5, Y: 5})
	centreMass := 0.0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			cc := Cell{X: c.X + dx, Y: c.Y + dy}
			if est.Dom.Contains(cc) {
				centreMass += est.At(cc)
			}
		}
	}
	if centreMass < 0.3 {
		t.Fatalf("estimate failed to concentrate: centre mass %v", centreMass)
	}
}

func TestEstimateMechanismSelection(t *testing.T) {
	pts := clusterPoints(2000, 0, 0)
	for _, mech := range EstimateMechanismNames() {
		est, err := Estimate(pts, 5, 2, WithMechanism(mech), WithSeed(2))
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if math.Abs(est.Total()-1) > 1e-9 {
			t.Fatalf("%s: total %v", mech, est.Total())
		}
	}
	_, err := Estimate(pts, 5, 2, WithMechanism("nope"))
	if err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	for _, name := range EstimateMechanismNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list accepted mechanism %s", err, name)
		}
	}
}

func TestEstimateWithWorkers(t *testing.T) {
	pts := clusterPoints(4000, 2, 2)
	for _, mech := range EstimateMechanismNames() {
		run := func() *Histogram {
			est, err := Estimate(pts, 5, 2,
				WithMechanism(mech), WithSeed(3), WithWorkers(3))
			if err != nil {
				t.Fatalf("%s: %v", mech, err)
			}
			return est
		}
		a, b := run(), run()
		for i := range a.Mass {
			if a.Mass[i] != b.Mass[i] {
				t.Fatalf("%s: same seed and worker count diverged", mech)
			}
		}
		if math.Abs(a.Total()-1) > 1e-9 {
			t.Fatalf("%s: total %v", mech, a.Total())
		}
	}
}

func TestEstimateEmptyPoints(t *testing.T) {
	if _, err := Estimate(nil, 5, 2); err == nil {
		t.Fatal("empty point set accepted")
	}
}

func TestEstimateDeterministicWithSeed(t *testing.T) {
	pts := clusterPoints(3000, 1, 1)
	a, err := Estimate(pts, 6, 2, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(pts, 6, 2, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Mass {
		if a.Mass[i] != b.Mass[i] {
			t.Fatal("same seed produced different estimates")
		}
	}
}

func TestMechanismConstructorsAndMetrics(t *testing.T) {
	dom, err := NewDomain(0, 0, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	dam, err := NewDAM(dom, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := HistFromPoints(dom, clusterPoints(5000, 5, 5))
	est, err := dam.EstimateHist(truth, NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	normTruth := truth.Clone().Normalize()
	w2, err := Wasserstein2(normTruth, est)
	if err != nil {
		t.Fatal(err)
	}
	w2s, err := Wasserstein2Sinkhorn(normTruth, est)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := SlicedWasserstein(normTruth, est, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if w2 < 0 || w2s < 0 || sw < 0 {
		t.Fatalf("negative distances: %v %v %v", w2, w2s, sw)
	}
	if sw > w2+1e-6 {
		t.Fatalf("sliced distance %v exceeds W2 %v", sw, w2)
	}
}

func TestWithRadiusOption(t *testing.T) {
	dom, err := NewDomain(0, 0, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewDAM(dom, 2, WithRadius(1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewDAM(dom, 2, WithRadius(3))
	if err != nil {
		t.Fatal(err)
	}
	if small.Name() != "DAM" || big.Name() != "DAM" {
		t.Fatal("unexpected mechanism names")
	}
}

func TestOptimalRadiusMonotoneInEps(t *testing.T) {
	prev := math.Inf(1)
	for _, eps := range []float64{0.5, 1, 2, 4, 8} {
		b, err := OptimalRadius(eps, 1)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Fatalf("b̌(%v) = %v not decreasing", eps, b)
		}
		prev = b
	}
}

func TestLocalPrivacyAndCalibration(t *testing.T) {
	dom, err := NewDomain(0, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	dam, err := NewDAM(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	lpDAM, err := LocalPrivacy(dom, dam)
	if err != nil {
		t.Fatal(err)
	}
	if lpDAM <= 0 {
		t.Fatalf("DAM local privacy %v", lpDAM)
	}
	epsGeo, err := CalibrateSEMGeoI(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	sem, err := NewSEMGeoI(dom, epsGeo)
	if err != nil {
		t.Fatal(err)
	}
	lpSEM, err := LocalPrivacy(dom, sem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpSEM-lpDAM) > 0.05*lpDAM {
		t.Fatalf("calibrated SEM LP %v vs DAM LP %v", lpSEM, lpDAM)
	}
	// MDSW does not expose a per-cell channel.
	mdswMech, err := NewMDSW(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LocalPrivacy(dom, mdswMech); err == nil {
		t.Fatal("LocalPrivacy accepted a marginal mechanism")
	}
}

func TestDAMBeatsMDSWPublicAPI(t *testing.T) {
	// The paper's headline result through the public API: on correlated
	// Gaussian data DAM's recovered distribution is closer in W2.
	r := NewRand(77)
	pts := make([]Point, 30000)
	for i := range pts {
		z1, z2 := r.NormFloat64(), r.NormFloat64()
		pts[i] = Point{X: z1, Y: 0.5*z1 + 0.866*z2}
	}
	dom, err := DomainOver(pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := HistFromPoints(dom, pts)
	normTruth := truth.Clone().Normalize()

	eval := func(m Mechanism) float64 {
		est, err := m.EstimateHist(truth, NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		w2, err := Wasserstein2(normTruth, est)
		if err != nil {
			t.Fatal(err)
		}
		return w2
	}
	dam, err := NewDAM(dom, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	mdswMech, err := NewMDSW(dom, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if wDAM, wMDSW := eval(dam), eval(mdswMech); wDAM >= wMDSW {
		t.Fatalf("DAM W2 %v not below MDSW %v", wDAM, wMDSW)
	}
}
