package dpspatial

import (
	"math"
	"testing"
)

func TestEstimate1DRecoversShape(t *testing.T) {
	r := NewRand(3)
	values := make([]float64, 100000)
	for i := range values {
		// Triangular-ish distribution on [0, 10] centred at 4.
		values[i] = 4 + 1.2*r.NormFloat64()
	}
	est, err := Estimate1D(values, 0, 10, 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	mode := 0
	for i, p := range est {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		total += p
		if p > est[mode] {
			mode = i
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("estimate total %v", total)
	}
	if mode < 3 || mode > 5 {
		t.Fatalf("mode bucket %d, want near 4 (est %v)", mode, est)
	}
}

func TestEstimate1DClampsOutOfRange(t *testing.T) {
	values := []float64{-100, 100, 5}
	for i := 0; i < 500; i++ {
		values = append(values, 5)
	}
	est, err := Estimate1D(values, 0, 10, 5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 5 {
		t.Fatalf("got %d buckets", len(est))
	}
}

func TestEstimate1DErrors(t *testing.T) {
	if _, err := Estimate1D(nil, 0, 1, 5, 1, 1); err == nil {
		t.Fatal("empty values accepted")
	}
	if _, err := Estimate1D([]float64{1}, 1, 0, 5, 1, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := Estimate1D([]float64{1}, 0, 1, 0, 1, 1); err == nil {
		t.Fatal("zero buckets accepted")
	}
	if _, err := Estimate1D([]float64{1}, 0, 1, 5, 0, 1); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestWasserstein1DBasics(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 0, 1}
	w, err := Wasserstein1D(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-2) > 1e-12 {
		t.Fatalf("W1 = %v, want 2", w)
	}
	w, err = Wasserstein1D(a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w > 1e-12 {
		t.Fatalf("self distance %v", w)
	}
	if _, err := Wasserstein1D(a, []float64{1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestEstimate1DLifecycleShardsMatchOneCall: splitting the same report
// stream across two aggregation shards and merging must reproduce the
// one-call Estimate1D result exactly — the 1-D building block now runs
// the same client / aggregator / estimator lifecycle as the 2-D
// mechanisms.
func TestEstimate1DLifecycleShardsMatchOneCall(t *testing.T) {
	r := NewRand(5)
	values := make([]float64, 20000)
	for i := range values {
		values[i] = 3 + r.NormFloat64()
	}
	const d, eps, seed = 8, 2.0, 9
	want, err := Estimate1D(values, 0, 6, d, eps, seed)
	if err != nil {
		t.Fatal(err)
	}

	sw, err := NewSW1D(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRand(seed)
	shards := []*Aggregate{sw.NewAggregate(), sw.NewAggregate()}
	width := 6.0 / d
	for i, v := range values {
		bucket := int(v / width)
		if bucket < 0 {
			bucket = 0
		}
		if bucket >= d {
			bucket = d - 1
		}
		rep, err := sw.Report(bucket, rr)
		if err != nil {
			t.Fatal(err)
		}
		if err := shards[i%2].Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	merged := shards[0].Clone()
	if err := merged.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	got, err := Estimate1DFromAggregate(sw, merged)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: sharded %v, one-call %v", i, got[i], want[i])
		}
	}
}
