package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/rangequery"
)

// The query subcommand answers analyst queries — rectangle totals and
// top-k heavy-hitter cells — either live against a collector or fleet
// supervisor (GET /v1/query) or locally from a merged aggregate file.
// Both routes go through collector.AnswerQuery, so the local answer is
// the byte-identical reference for the served one: CI diffs the two.

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	url := fs.String("url", "", "collector or supervisor base URL, e.g. http://127.0.0.1:8080")
	authToken := fs.String("auth-token", "", "bearer token for a service running with --auth-token (with --url)")
	tlsCA := fs.String("tls-ca", "", "PEM CA bundle to trust for an https:// --url")
	fromAgg := fs.String("from-aggregate", "", "answer locally from a merged aggregate file instead of a service")
	rangeStr := fs.String("range", "", "range query: x0,y0,x1,y1 (inclusive cell coordinates)")
	topk := fs.Int("topk", 0, "top-k query: the k heaviest estimate cells")
	asJSON := fs.Bool("json", false, "print the full query response JSON instead of the bare answer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == (*fromAgg == "") {
		return fmt.Errorf("need exactly one of --url or --from-aggregate")
	}
	if (*rangeStr == "") == (*topk == 0) {
		return fmt.Errorf("need exactly one of --range or --topk")
	}

	var req collector.QueryRequest
	if *rangeStr != "" {
		q, err := parseRangeFlag(*rangeStr)
		if err != nil {
			return err
		}
		req = collector.QueryRequest{Type: collector.QueryTypeRange, Range: q}
	} else {
		if *topk < 1 {
			return fmt.Errorf("--topk must be >= 1")
		}
		req = collector.QueryRequest{Type: collector.QueryTypeTopK, K: *topk}
	}

	var resp *collector.QueryResponse
	var err error
	if *url != "" {
		client := dpspatial.NewCollectorClient(*url)
		client.AuthToken = *authToken
		var httpc *http.Client
		httpc, err = clientForCA(*tlsCA)
		if err != nil {
			return err
		}
		client.HTTPClient = httpc
		resp, err = client.Query(context.Background(), req)
	} else {
		var hdr *collector.Pipeline
		var agg *dpspatial.Aggregate
		hdr, agg, err = consumeInput(*fromAgg)
		if err != nil {
			return fmt.Errorf("%s: %w", *fromAgg, err)
		}
		var rm dpspatial.ReportingMechanism
		rm, err = dpspatial.NewMechanismFromPipeline(hdr)
		if err != nil {
			return err
		}
		resp, err = collector.AnswerQueryFromAggregate(rm, agg, req)
	}
	if err != nil {
		return err
	}

	if *asJSON {
		out, err := json.Marshal(resp)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	switch resp.Type {
	case collector.QueryTypeRange:
		fmt.Printf("%g\n", resp.Range.Value)
	case collector.QueryTypeTopK:
		fmt.Println("cell_x,cell_y,mass")
		for _, c := range resp.TopK.Cells {
			fmt.Printf("%d,%d,%g\n", c.X, c.Y, c.Mass)
		}
	}
	return nil
}

// parseRangeFlag decodes the x0,y0,x1,y1 rectangle syntax.
func parseRangeFlag(s string) (rangequery.Query, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return rangequery.Query{}, fmt.Errorf("--range needs x0,y0,x1,y1, got %q", s)
	}
	vals := make([]int, 4)
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return rangequery.Query{}, fmt.Errorf("--range: %v", err)
		}
		vals[i] = n
	}
	return rangequery.Query{X0: vals[0], Y0: vals[1], X1: vals[2], Y1: vals[3]}, nil
}
