package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpspatial"
	"dpspatial/internal/experiments"
	"dpspatial/internal/geom"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

func (hc *harnessConfig) suite() *experiments.Suite {
	return experiments.NewSuite(experiments.Config{
		Scale:         synth.Scale(hc.scale),
		Repeats:       hc.repeats,
		Seed:          hc.seed,
		MaxPoints:     hc.maxPoints,
		LPCalibration: !hc.noLPCal,
		Workers:       hc.workers,
	})
}

func cmdFig(args []string) error {
	fs := flag.NewFlagSet("fig", flag.ExitOnError)
	hc := harnessFlags(fs)
	figName := fs.String("fig", "", "figure id: 8, 9a..9t, 13a..13d, 14a, 14b")
	asJSON := fs.Bool("json", false, "emit JSON instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *figName == "" {
		return fmt.Errorf("missing --fig")
	}
	s := hc.suite()
	fig, err := runFigure(s, *figName)
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := fig.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(fig.Format())
	return nil
}

// runFigure dispatches a figure id to its suite runner.
func runFigure(s *experiments.Suite, name string) (*experiments.Figure, error) {
	datasets := experiments.DatasetNames()
	switch {
	case name == "8":
		return s.Fig8()
	case name == "14a":
		return s.Fig14a()
	case name == "14b":
		return s.Fig14b()
	case strings.HasPrefix(name, "13"):
		return s.Fig13(strings.TrimPrefix(name, "13"))
	case strings.HasPrefix(name, "9") && len(name) == 2:
		letter := name[1]
		if letter < 'a' || letter > 't' {
			return nil, fmt.Errorf("unknown figure 9 panel %q", name)
		}
		idx := int(letter - 'a')
		dataset := datasets[idx%5]
		switch idx / 5 {
		case 0:
			return s.Fig9SmallD(dataset)
		case 1:
			return s.Fig9LargeD(dataset)
		case 2:
			return s.Fig9SmallEps(dataset)
		default:
			return s.Fig9LargeEps(dataset)
		}
	default:
		return nil, fmt.Errorf("unknown figure %q", name)
	}
}

func cmdTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ExitOnError)
	hc := harnessFlags(fs)
	table := fs.Int("table", 0, "table number: 3, 4 or 5")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := hc.suite()
	switch *table {
	case 3:
		t, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
	case 4:
		fmt.Print(s.Table4().Format())
	case 5:
		fmt.Print(s.Table5().Format())
	default:
		return fmt.Errorf("unknown table %d", *table)
	}
	return nil
}

func cmdShapes(args []string) error {
	fs := flag.NewFlagSet("shapes", flag.ExitOnError)
	hc := harnessFlags(fs)
	figList := fs.String("figs", "8,9a,9d,14a", "comma-separated figure ids to audit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := hc.suite()
	figs := map[string]*experiments.Figure{}
	for _, id := range strings.Split(*figList, ",") {
		fig, err := runFigure(s, id)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		figs[fig.Name] = fig
		fmt.Print(fig.Format())
		fmt.Println()
	}
	for _, line := range experiments.SummarizeShapes(figs) {
		fmt.Println(line)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	hc := harnessFlags(fs)
	dataset := fs.String("dataset", "Crime", "dataset name")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := rng.New(hc.seed)
	var pts []geom.Point
	switch *dataset {
	case "Crime":
		ds, err := synth.ChicagoCrimeLike(r, synth.Scale(hc.scale))
		if err != nil {
			return err
		}
		pts = ds.Points
	case "NYC":
		ds, err := synth.NYCGreenTaxiLike(r, synth.Scale(hc.scale))
		if err != nil {
			return err
		}
		pts = ds.Points
	case "Normal":
		var err error
		pts, err = synth.Normal(r, synth.Scale(hc.scale).Of(300000), 0, 0, 1, 1, 0.5, 5)
		if err != nil {
			return err
		}
	case "SZipf":
		var err error
		pts, err = synth.SkewZipf(r, synth.Scale(hc.scale).Of(100000))
		if err != nil {
			return err
		}
	case "MNormal":
		var err error
		pts, err = synth.MNormal(r, synth.Scale(hc.scale).Of(300000))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	fmt.Fprintln(bw, "x,y")
	for _, p := range pts {
		fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y)
	}
	return nil
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	in := fs.String("in", "", "input CSV with x,y columns")
	fromAgg := fs.String("from-aggregate", "", "decode a merged aggregate file instead of collecting from CSV points")
	fromURL := fs.String("from-url", "", "fetch the current estimate from a collector or fleet supervisor (base URL)")
	authToken := fs.String("auth-token", "", "bearer token for a service running with --auth-token (with --from-url)")
	tlsCA := fs.String("tls-ca", "", "PEM CA bundle to trust for an https:// --from-url")
	d := fs.Int("d", 15, "grid side length")
	eps := fs.Float64("eps", 3.5, "privacy budget")
	mech := fs.String("mech", "DAM", "mechanism: "+strings.Join(dpspatial.EstimateMechanismNames(), ", "))
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "collection fan-out workers (0 = all cores; values ≠ 1 use per-worker RNG streams)")
	render := fs.Bool("render", false, "print an ASCII density map instead of CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var est *dpspatial.Histogram
	var err error
	switch {
	case *fromURL != "":
		est, err = estimateFromURL(*fromURL, *authToken, *tlsCA)
	case *fromAgg != "":
		est, err = estimateFromAggregateFile(*fromAgg)
	case *in != "":
		var pts []dpspatial.Point
		pts, err = readPointsCSV(*in)
		if err != nil {
			return err
		}
		est, err = dpspatial.Estimate(pts, *d, *eps,
			dpspatial.WithMechanism(*mech), dpspatial.WithSeed(*seed),
			dpspatial.WithWorkers(*workers))
	default:
		return fmt.Errorf("missing --in, --from-aggregate or --from-url")
	}
	if err != nil {
		return err
	}
	if *render {
		fmt.Print(est.Render())
		return nil
	}
	fmt.Println("cell_x,cell_y,probability")
	for i, m := range est.Mass {
		c := est.Dom.CellAt(i)
		fmt.Printf("%d,%d,%g\n", c.X, c.Y, m)
	}
	return nil
}

func readPointsCSV(path string) ([]dpspatial.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []dpspatial.Point
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || (lineNo == 1 && strings.HasPrefix(strings.ToLower(line), "x")) {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("%s:%d: need x,y columns", path, lineNo)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		pts = append(pts, dpspatial.Point{X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("%s: no points", path)
	}
	return pts, nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	d := fs.Int("d", 20, "grid side length")
	eps := fs.Float64("eps", 3.5, "privacy budget")
	n := fs.Int("n", 60000, "synthetic city population")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pts, err := synth.City(rng.New(42), synth.CityConfig{
		N: *n, Streets: 10, Hotspots: 5, StreetFrac: 0.7, Jitter: 0.004, HotSigma: 0.02,
	})
	if err != nil {
		return err
	}
	dom, err := dpspatial.DomainOver(pts, *d)
	if err != nil {
		return err
	}
	truth := dpspatial.HistFromPoints(dom, pts)
	mech, err := dpspatial.NewDAM(dom, *eps)
	if err != nil {
		return err
	}
	est, err := mech.EstimateHist(truth, dpspatial.NewRand(7))
	if err != nil {
		return err
	}
	fmt.Printf("True density (d=%d):\n%s\n", *d, truth.Clone().Normalize().Render())
	fmt.Printf("DAM estimate (eps=%g):\n%s", *eps, est.Render())
	w2, err := dpspatial.Wasserstein2Sinkhorn(truth.Clone().Normalize(), est)
	if err != nil {
		return err
	}
	fmt.Printf("\nW2(true, estimate) ≈ %.4f cell units\n", w2)
	return nil
}

func cmdAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	hc := harnessFlags(fs)
	what := fs.String("what", "shrink", "ablation: shrink, post, baselines or rangequery")
	dataset := fs.String("dataset", "Crime", "dataset for single-dataset ablations")
	d := fs.Int("d", 10, "grid side length for baselines/rangequery ablations")
	eps := fs.Float64("eps", 3.5, "privacy budget for baselines/rangequery ablations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := hc.suite()
	switch *what {
	case "shrink":
		t, err := s.AblationShrinkage()
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
	case "post":
		t, err := s.AblationPostprocess(*dataset)
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
	case "baselines":
		t, err := s.AblationBaselines(*dataset, *d, *eps)
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
	case "rangequery":
		f, err := s.RangeQueryExperiment(*dataset, *d, *eps)
		if err != nil {
			return err
		}
		fmt.Print(f.Format())
	default:
		return fmt.Errorf("unknown ablation %q", *what)
	}
	return nil
}
