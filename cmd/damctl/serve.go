package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/durable"
)

// The serve / submit subcommands wrap the report lifecycle in a network
// service: `serve` runs the long-running HTTP collector daemon
// (internal/collector) and `submit` ships report or aggregate shard
// files to it. `estimate --from-url` closes the loop by fetching the
// merged estimate back.

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cadence := fs.Duration("cadence", 2*time.Second, "background re-estimate cadence (0 = decode only on demand)")
	authToken := fs.String("auth-token", "", "shared bearer-token secret; every endpoint except /healthz requires it")
	mech := fs.String("mech", "", "pre-build this mechanism at startup (default: adopt from the first submission): "+strings.Join(dpspatial.MechanismNames(), ", "))
	d := fs.Int("d", 15, "grid side length (with --mech)")
	eps := fs.Float64("eps", 3.5, "privacy budget (with --mech)")
	minX := fs.Float64("minx", 0, "domain lower-left x (with --mech)")
	minY := fs.Float64("miny", 0, "domain lower-left y (with --mech)")
	side := fs.Float64("side", 1, "domain side length (with --mech)")
	dataDir := fs.String("data-dir", "", "durable state directory: snapshots + write-ahead log; a restart with the same directory recovers the merged state and the recent-ack log")
	snapshotEvery := fs.Int("snapshot-every", 0, "WAL records between snapshots with --data-dir (0 = default, negative = snapshot only at shutdown)")
	metricsOn := fs.Bool("metrics", true, "serve the Prometheus text exposition on GET /metrics (behind --auth-token like the data endpoints)")
	df := addDaemonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := df.validate(); err != nil {
		return err
	}
	slowLog, err := df.slowLogger()
	if err != nil {
		return err
	}

	cfg := collector.Config{
		Cadence:        *cadence,
		AuthToken:      *authToken,
		DisableMetrics: !*metricsOn,
		DisableTraces:  df.tracingDisabled(),
		TraceCapacity:  df.traceCapacity(),
		SlowLog:        slowLog,
		EnablePprof:    *df.pprof,
		// Adopt the mechanism from the first submission's pipeline
		// metadata (a report stream's header line, or the
		// X-Dpspatial-Pipeline header on a binary aggregate POST).
		Build: func(p *collector.Pipeline) (collector.Estimator, error) {
			return dpspatial.NewMechanismFromPipeline(p)
		},
	}
	if *mech != "" {
		dom, err := dpspatial.NewDomain(*minX, *minY, *side, *d)
		if err != nil {
			return err
		}
		pipeline, m, err := dpspatial.NewCollectorPipeline(*mech, dom, *eps)
		if err != nil {
			return err
		}
		cfg.Mechanism = m
		cfg.Pipeline = pipeline
	}
	if *dataDir != "" {
		st, err := durable.Open(*dataDir)
		if err != nil {
			return err
		}
		// Deferred before the collector's Close below, so LIFO ordering
		// closes the WAL handle only after the final snapshot flushed.
		defer st.Close()
		cfg.Store = st
		cfg.SnapshotEvery = *snapshotEvery
	}
	c, err := collector.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	c.Start()
	defer c.Close()
	srv := &http.Server{Handler: c}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- df.serve(srv, ln) }()
	fmt.Printf("damctl: collector listening on %s://%s (cadence %s)\n", df.scheme(), ln.Addr(), *cadence)
	if *metricsOn {
		fmt.Printf("damctl: metrics exposition at %s://%s%s\n", df.scheme(), ln.Addr(), collector.MetricsPath)
	}
	if !df.tracingDisabled() {
		fmt.Printf("damctl: trace buffer at %s://%s%s\n", df.scheme(), ln.Addr(), collector.TracesPath)
	}
	if cfg.Store != nil {
		ds := cfg.Store.Stats()
		fmt.Printf("damctl: durable state in %s (snapshot seq %d, %d WAL records replayed in %dms)\n",
			*dataDir, ds.SnapshotSeq, ds.RecordsReplayed, ds.RecoveryMillis)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Stop accepting, then let the deferred collector Close flush a
		// final snapshot before the store's WAL handle closes.
		fmt.Println("damctl: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	url := fs.String("url", "", "collector or supervisor base URL, e.g. http://127.0.0.1:8080")
	authToken := fs.String("auth-token", "", "bearer token for a collector running with --auth-token")
	retries := fs.Int("retries", 3, "retry a shard this many times on transient failures (5xx / connection refused), with doubling jittered backoff")
	backoff := fs.Duration("retry-backoff", 100*time.Millisecond, "backoff window before the first retry")
	submissionID := fs.String("submission-id", "", "explicit idempotency ID (single file only): re-running the same submission under the same ID merges exactly once, across restarts of either side")
	tlsCA := fs.String("tls-ca", "", "PEM CA bundle to trust for an https:// --url (e.g. the fleet's self-signed --tls-cert)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("missing --url")
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no shard files to submit")
	}
	if *submissionID != "" && len(files) > 1 {
		return fmt.Errorf("--submission-id names ONE logical submission; got %d files", len(files))
	}
	client := dpspatial.NewCollectorClient(*url)
	client.AuthToken = *authToken
	client.MaxRetries = *retries
	client.RetryBackoff = *backoff
	httpc, err := clientForCA(*tlsCA)
	if err != nil {
		return err
	}
	client.HTTPClient = httpc
	ctx := context.Background()
	for _, path := range files {
		id := *submissionID
		if id == "" {
			id = collector.NewSubmissionID()
		}
		resp, err := submitFile(ctx, client, path, id)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		via := ""
		if resp.Member != "" {
			via = fmt.Sprintf(" via %s", resp.Member)
		}
		dup := ""
		if resp.Duplicate {
			dup = " (duplicate: original ack replayed)"
		}
		tr := ""
		if resp.TraceID != "" {
			tr = fmt.Sprintf(" (trace %s)", resp.TraceID)
		}
		fmt.Printf("%s: merged %g reports%s (total %g, generation %d)%s%s\n",
			path, resp.Reports, via, resp.TotalReports, resp.Generation, dup, tr)
	}
	return nil
}

// submitFile sniffs a shard file's format — a raw DPA1/DPA2 blob, an
// aggregate envelope, or a reports stream — and ships it under the
// given submission ID.
func submitFile(ctx context.Context, client *dpspatial.CollectorClient, path, id string) (*collector.SubmitResponse, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("DPA")) {
		// Binary aggregates carry no pipeline metadata; the collector
		// must already be locked to a scheme (or adopt from another
		// submission first).
		return client.SubmitAggregateBlobWithID(ctx, data, nil, id)
	}
	firstLine := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		firstLine = data[:i]
	}
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(firstLine, &probe); err != nil {
		return nil, fmt.Errorf("not a reports, aggregate or DPA shard file: %v", err)
	}
	switch probe.Format {
	case aggregateFormat:
		var env aggregateEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, err
		}
		if env.Aggregate == nil {
			return nil, fmt.Errorf("aggregate file has no aggregate")
		}
		blob, err := env.Aggregate.MarshalBinary()
		if err != nil {
			return nil, err
		}
		hdr := env.Pipeline
		return client.SubmitAggregateBlobWithID(ctx, blob, &hdr, id)
	case reportsFormat:
		return client.SubmitReportStreamWithID(ctx, bytes.NewReader(data), id)
	default:
		return nil, fmt.Errorf("unknown format %q", probe.Format)
	}
}

// estimateFromURL fetches the current histogram from a collector or a
// fleet supervisor (same protocol, so the flag is transparent). caPath
// optionally names a PEM CA bundle to trust for https:// URLs.
func estimateFromURL(url, authToken, caPath string) (*dpspatial.Histogram, error) {
	client := dpspatial.NewCollectorClient(url)
	client.AuthToken = authToken
	httpc, err := clientForCA(caPath)
	if err != nil {
		return nil, err
	}
	client.HTTPClient = httpc
	est, _, err := client.Estimate(context.Background())
	return est, err
}
