package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"flag"
	"math/big"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dpspatial"
	"dpspatial/internal/collector"
)

// writeLoopbackCert generates a self-signed ECDSA certificate for
// 127.0.0.1 / localhost and writes the PEM pair into dir. The cert file
// doubles as the CA bundle a client trusts via --tls-ca.
func writeLoopbackCert(t *testing.T, dir string) (certPath, keyPath string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "dpspatial-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		DNSNames:              []string{"localhost"},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	certPath = filepath.Join(dir, "cert.pem")
	keyPath = filepath.Join(dir, "key.pem")
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(certPath, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyPath, keyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	return certPath, keyPath
}

// parseDaemonFlags runs the shared daemon flag set over args, as the
// serve/supervise subcommands would.
func parseDaemonFlags(t *testing.T, args ...string) *daemonFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	df := addDaemonFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return df
}

func TestTLSFlagValidation(t *testing.T) {
	certPath, keyPath := writeLoopbackCert(t, t.TempDir())

	if err := parseDaemonFlags(t, "--tls-cert", certPath).validate(); err == nil {
		t.Fatal("--tls-cert without --tls-key validated")
	}
	if err := parseDaemonFlags(t, "--tls-key", keyPath).validate(); err == nil {
		t.Fatal("--tls-key without --tls-cert validated")
	}
	if err := parseDaemonFlags(t, "--tls-cert", certPath, "--tls-key", certPath).validate(); err == nil {
		t.Fatal("mismatched key pair validated")
	}
	if err := parseDaemonFlags(t, "--log-format", "yaml").validate(); err == nil {
		t.Fatal("unknown --log-format validated")
	}
	df := parseDaemonFlags(t, "--tls-cert", certPath, "--tls-key", keyPath)
	if err := df.validate(); err != nil {
		t.Fatalf("valid pair rejected: %v", err)
	}
	if got := df.scheme(); got != "https" {
		t.Fatalf("scheme = %q, want https", got)
	}
	if got := parseDaemonFlags(t).scheme(); got != "http" {
		t.Fatalf("plain scheme = %q, want http", got)
	}
}

// TestTLSServeLoopback terminates TLS exactly like `damctl serve
// --tls-cert --tls-key` and round-trips a submission plus the estimate
// through a client built with --tls-ca.
func TestTLSServeLoopback(t *testing.T) {
	certPath, keyPath := writeLoopbackCert(t, t.TempDir())
	df := parseDaemonFlags(t, "--tls-cert", certPath, "--tls-key", keyPath)
	if err := df.validate(); err != nil {
		t.Fatal(err)
	}

	dom, err := dpspatial.NewDomain(0, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, rm, err := dpspatial.NewCollectorPipeline("DAM", dom, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := collector.New(collector.Config{Mechanism: rm, Pipeline: pipeline})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: c}
	defer srv.Close()
	go func() { _ = df.serve(srv, ln) }()

	agg := rm.NewAggregate()
	r := dpspatial.NewRand(11)
	for i := 0; i < rm.NumInputs(); i++ {
		rep, err := rm.Report(i, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	client := dpspatial.NewCollectorClient("https://" + ln.Addr().String())
	client.HTTPClient, err = clientForCA(certPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	resp, err := client.SubmitAggregateBlobWithID(ctx, blob, pipeline, collector.NewSubmissionID())
	if err != nil {
		t.Fatalf("TLS submit: %v", err)
	}
	if resp.Reports != agg.N {
		t.Fatalf("merged %g reports, want %g", resp.Reports, agg.N)
	}
	if resp.TraceID == "" {
		t.Fatal("TLS submit ack carries no trace ID")
	}

	served, _, err := client.Estimate(ctx)
	if err != nil {
		t.Fatalf("TLS estimate: %v", err)
	}
	local, err := rm.EstimateFromAggregate(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(served.Mass) != len(local.Mass) {
		t.Fatalf("estimate size %d, want %d", len(served.Mass), len(local.Mass))
	}
	for i := range served.Mass {
		if served.Mass[i] != local.Mass[i] {
			t.Fatalf("served estimate diverges from in-process decode at cell %d", i)
		}
	}

	// A plain-HTTP client must NOT get through: the listener only
	// terminates TLS.
	plain := dpspatial.NewCollectorClient("http://" + ln.Addr().String())
	if _, _, err := plain.Estimate(ctx); err == nil {
		t.Fatal("plain HTTP request succeeded against a TLS listener")
	}

	// An https client without the CA must fail verification.
	noCA := dpspatial.NewCollectorClient("https://" + ln.Addr().String())
	if _, _, err := noCA.Estimate(ctx); err == nil ||
		!strings.Contains(err.Error(), "certificate") {
		t.Fatalf("want certificate verification failure, got %v", err)
	}
}
