package main

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dpspatial/internal/trace"
)

// Flags shared by the two daemon subcommands (serve, supervise):
// observability — slow-request logging, tracing buffer, gated pprof —
// and TLS termination. Kept in one place so both daemons speak the same
// operational dialect.

type daemonFlags struct {
	slowMs    *float64
	logFormat *string
	traceBuf  *int
	pprof     *bool
	tlsCert   *string
	tlsKey    *string
}

func addDaemonFlags(fs *flag.FlagSet) *daemonFlags {
	return &daemonFlags{
		slowMs: fs.Float64("slow-ms", -1,
			"log requests slower than this many milliseconds to stderr, with their trace ID (0 = every request, negative = disabled)"),
		logFormat: fs.String("log-format", "text",
			"slow-request log format: text or json"),
		traceBuf: fs.Int("trace-buffer", 0,
			"completed traces retained in memory for GET /v1/traces (0 = default, negative = disable tracing)"),
		pprof: fs.Bool("pprof", false,
			"mount net/http/pprof under /debug/pprof/ (behind --auth-token like the data endpoints)"),
		tlsCert: fs.String("tls-cert", "",
			"serve HTTPS with this PEM certificate (requires --tls-key)"),
		tlsKey: fs.String("tls-key", "",
			"PEM private key for --tls-cert"),
	}
}

// slowLogger builds the slow-request logger the flags describe, or nil
// when disabled.
func (d *daemonFlags) slowLogger() (*trace.SlowLogger, error) {
	jsonFormat := false
	switch *d.logFormat {
	case "text":
	case "json":
		jsonFormat = true
	default:
		return nil, fmt.Errorf("unknown --log-format %q (want text or json)", *d.logFormat)
	}
	if *d.slowMs < 0 {
		return nil, nil
	}
	return &trace.SlowLogger{
		W:         os.Stderr,
		Threshold: time.Duration(*d.slowMs * float64(time.Millisecond)),
		JSON:      jsonFormat,
	}, nil
}

// tracingDisabled reports whether --trace-buffer asked tracing off.
func (d *daemonFlags) tracingDisabled() bool { return *d.traceBuf < 0 }

// traceCapacity is the ring capacity to configure (0 = package default).
func (d *daemonFlags) traceCapacity() int {
	if *d.traceBuf < 0 {
		return 0
	}
	return *d.traceBuf
}

// validate rejects inconsistent flag combinations early, before a
// listener is bound.
func (d *daemonFlags) validate() error {
	if _, err := d.slowLogger(); err != nil {
		return err
	}
	if (*d.tlsCert == "") != (*d.tlsKey == "") {
		return fmt.Errorf("--tls-cert and --tls-key must be given together")
	}
	if *d.tlsCert != "" {
		// Fail on an unreadable or mismatched pair now rather than at
		// the first handshake.
		if _, err := tls.LoadX509KeyPair(*d.tlsCert, *d.tlsKey); err != nil {
			return fmt.Errorf("loading TLS key pair: %w", err)
		}
	}
	return nil
}

// scheme is the URL scheme the daemon will answer on.
func (d *daemonFlags) scheme() string {
	if *d.tlsCert != "" {
		return "https"
	}
	return "http"
}

// serve runs the HTTP server on ln, terminating TLS when a cert pair
// was configured.
func (d *daemonFlags) serve(srv *http.Server, ln net.Listener) error {
	if *d.tlsCert != "" {
		return srv.ServeTLS(ln, *d.tlsCert, *d.tlsKey)
	}
	return srv.Serve(ln)
}

// clientForCA builds the http.Client for the client-side
// subcommands: with a --tls-ca file the returned client trusts exactly
// that CA (for fleets serving a self-signed or private-CA certificate);
// with an empty path it returns nil, meaning http.DefaultClient.
func clientForCA(caPath string) (*http.Client, error) {
	if caPath == "" {
		return nil, nil
	}
	pem, err := os.ReadFile(caPath)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("%s: no PEM certificates found", caPath)
	}
	return &http.Client{
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{RootCAs: pool},
		},
	}, nil
}
