package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportAggregateEstimatePipeline drives the full distributed
// lifecycle from the CLI — gen → report (2 shards) → two independent
// aggregate runs → merge → estimate --from-aggregate — and checks the
// result is identical to the in-process estimate for the same seed.
func TestReportAggregateEstimatePipeline(t *testing.T) {
	for _, mech := range []string{"DAM", "MDSW"} {
		t.Run(mech, func(t *testing.T) {
			dir := t.TempDir()
			pts := filepath.Join(dir, "points.csv")
			capture(t, func() error {
				return cmdGen([]string{"--dataset", "SZipf", "--scale", "0.002", "--seed", "7", "--out", pts})
			})

			prefix := filepath.Join(dir, "rep")
			capture(t, func() error {
				return cmdReport([]string{"--in", pts, "--d", "6", "--eps", "1.5",
					"--mech", mech, "--seed", "5", "--shards", "2", "--out", prefix})
			})

			agg0 := filepath.Join(dir, "agg0.json")
			agg1 := filepath.Join(dir, "agg1.json")
			merged := filepath.Join(dir, "agg.json")
			capture(t, func() error {
				return cmdAggregate([]string{"--out", agg0, prefix + "-000.jsonl"})
			})
			capture(t, func() error {
				return cmdAggregate([]string{"--out", agg1, prefix + "-001.jsonl"})
			})
			capture(t, func() error {
				return cmdAggregate([]string{"--out", merged, agg0, agg1})
			})

			fromAgg := capture(t, func() error {
				return cmdEstimate([]string{"--from-aggregate", merged})
			})
			direct := capture(t, func() error {
				return cmdEstimate([]string{"--in", pts, "--d", "6", "--eps", "1.5",
					"--mech", mech, "--seed", "5"})
			})
			if fromAgg != direct {
				t.Fatalf("sharded aggregate estimate differs from the in-process pipeline\nfrom aggregate:\n%s\ndirect:\n%s", fromAgg, direct)
			}
			if !strings.HasPrefix(fromAgg, "cell_x,cell_y,probability\n") {
				t.Fatalf("unexpected estimate output:\n%s", fromAgg)
			}
		})
	}
}

// TestAggregateStdinStream checks that the aggregator consumes a report
// stream from stdin — the `producer | damctl aggregate` deployment shape.
func TestAggregateStdinStream(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "points.csv")
	capture(t, func() error {
		return cmdGen([]string{"--dataset", "SZipf", "--scale", "0.002", "--seed", "7", "--out", pts})
	})
	reports := filepath.Join(dir, "reports.jsonl")
	capture(t, func() error {
		return cmdReport([]string{"--in", pts, "--d", "6", "--eps", "1.5", "--seed", "5", "--out", reports})
	})

	fromFile := capture(t, func() error {
		return cmdAggregate([]string{reports})
	})
	f, err := os.Open(reports)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	oldStdin := os.Stdin
	os.Stdin = f
	fromStdin := capture(t, func() error {
		return cmdAggregate(nil)
	})
	os.Stdin = oldStdin
	if fromFile != fromStdin {
		t.Fatal("stdin aggregation differs from file aggregation")
	}
	if !strings.Contains(fromFile, `"format":"dpspatial-aggregate/1"`) {
		t.Fatalf("missing aggregate format marker:\n%s", fromFile)
	}
}

// TestAggregateRejectsMixedSchemes checks that shards from different
// mechanisms refuse to merge.
func TestAggregateRejectsMixedSchemes(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "points.csv")
	capture(t, func() error {
		return cmdGen([]string{"--dataset", "SZipf", "--scale", "0.002", "--seed", "7", "--out", pts})
	})
	dam := filepath.Join(dir, "dam.jsonl")
	mdsw := filepath.Join(dir, "mdsw.jsonl")
	capture(t, func() error {
		return cmdReport([]string{"--in", pts, "--d", "6", "--eps", "1.5", "--mech", "DAM", "--out", dam})
	})
	capture(t, func() error {
		return cmdReport([]string{"--in", pts, "--d", "6", "--eps", "1.5", "--mech", "MDSW", "--out", mdsw})
	})
	if err := cmdAggregate([]string{"--out", filepath.Join(dir, "x.json"), dam, mdsw}); err == nil {
		t.Fatal("aggregating DAM and MDSW reports together should fail")
	}
}
