package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// tinyFlags keeps every smoke test in the sub-second range.
var tinyFlags = []string{
	"--scale", "0.002", "--repeats", "1", "--max-points", "1500",
	"--no-lp-cal", "--seed", "11",
}

// capture runs a subcommand with os.Stdout redirected and returns what it
// printed, failing the test if the command errors.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", runErr, out)
	}
	return out
}

func TestCmdFigText(t *testing.T) {
	out := capture(t, func() error {
		return cmdFig(append([]string{"--fig", "9d"}, tinyFlags...))
	})
	if !strings.Contains(out, "fig9d") {
		t.Fatalf("figure name missing from output:\n%s", out)
	}
	for _, mech := range []string{"DAM", "MDSW", "HUEM", "SEM-Geo-I"} {
		if !strings.Contains(out, mech) {
			t.Fatalf("series %s missing from output:\n%s", mech, out)
		}
	}
}

func TestCmdFigJSON(t *testing.T) {
	out := capture(t, func() error {
		return cmdFig(append([]string{"--fig", "9d", "--json"}, tinyFlags...))
	})
	var fig struct {
		Name   string
		Series []struct {
			Label string
			X, Y  []float64
		}
	}
	if err := json.Unmarshal([]byte(out), &fig); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if fig.Name != "fig9d" || len(fig.Series) != 5 {
		t.Fatalf("unexpected figure %q with %d series", fig.Name, len(fig.Series))
	}
}

func TestCmdFigUnknown(t *testing.T) {
	if err := cmdFig(append([]string{"--fig", "zz"}, tinyFlags...)); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := cmdFig(tinyFlags); err == nil {
		t.Fatal("missing --fig accepted")
	}
}

func TestCmdTables(t *testing.T) {
	out := capture(t, func() error {
		return cmdTables(append([]string{"--table", "3"}, tinyFlags...))
	})
	if !strings.Contains(out, "Crime") || !strings.Contains(out, "NYC") {
		t.Fatalf("table 3 lost dataset rows:\n%s", out)
	}
	for _, n := range []string{"4", "5"} {
		out := capture(t, func() error {
			return cmdTables(append([]string{"--table", n}, tinyFlags...))
		})
		if !strings.Contains(out, "privacy budget eps") {
			t.Fatalf("table %s lost parameter rows:\n%s", n, out)
		}
	}
	if err := cmdTables(append([]string{"--table", "9"}, tinyFlags...)); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestCmdShapes(t *testing.T) {
	out := capture(t, func() error {
		return cmdShapes(append([]string{"--figs", "9d"}, tinyFlags...))
	})
	if !strings.Contains(out, "fig9d") {
		t.Fatalf("audited figure missing:\n%s", out)
	}
	if !strings.Contains(out, "PASS") && !strings.Contains(out, "DIVERGES") {
		t.Fatalf("claim audit lines missing:\n%s", out)
	}
}

func TestCmdGenAndEstimate(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "points.csv")
	capture(t, func() error {
		return cmdGen(append([]string{"--dataset", "SZipf", "--out", csvPath}, tinyFlags...))
	})
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "x,y" || len(lines) < 10 {
		t.Fatalf("generated CSV malformed: %d lines, header %q", len(lines), lines[0])
	}
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 2 {
			t.Fatalf("bad row %q", line)
		}
		for _, c := range cols {
			if _, err := strconv.ParseFloat(c, 64); err != nil {
				t.Fatalf("bad number in row %q: %v", line, err)
			}
		}
	}

	for _, mech := range []string{"DAM", "DAM-NS", "HUEM", "MDSW", "SEM-Geo-I"} {
		out := capture(t, func() error {
			return cmdEstimate([]string{
				"--in", csvPath, "--d", "4", "--eps", "2",
				"--mech", mech, "--workers", "2",
			})
		})
		rows := strings.Split(strings.TrimSpace(out), "\n")
		if rows[0] != "cell_x,cell_y,probability" {
			t.Fatalf("%s: missing CSV header, got %q", mech, rows[0])
		}
		if len(rows) != 1+4*4 {
			t.Fatalf("%s: %d rows for a 4x4 grid", mech, len(rows))
		}
		total := 0.0
		for _, row := range rows[1:] {
			cols := strings.Split(row, ",")
			p, err := strconv.ParseFloat(cols[2], 64)
			if err != nil {
				t.Fatalf("%s: bad probability in %q: %v", mech, row, err)
			}
			total += p
		}
		if total < 0.99 || total > 1.01 {
			t.Fatalf("%s: probabilities sum to %v", mech, total)
		}
	}

	if err := cmdEstimate([]string{"--in", csvPath, "--d", "4", "--eps", "2", "--mech", "nope"}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if err := cmdEstimate([]string{"--d", "4"}); err == nil {
		t.Fatal("missing --in accepted")
	}
}

func TestCmdGenUnknownDataset(t *testing.T) {
	if err := cmdGen(append([]string{"--dataset", "nope"}, tinyFlags...)); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCmdAblate(t *testing.T) {
	out := capture(t, func() error {
		return cmdAblate(append([]string{"--what", "baselines", "--dataset", "SZipf", "--d", "5", "--eps", "2"}, tinyFlags...))
	})
	for _, mech := range []string{"CFO", "MDSW", "AHEAD", "PlanarLaplace", "DAM"} {
		if !strings.Contains(out, mech) {
			t.Fatalf("mechanism %s missing from ablation:\n%s", mech, out)
		}
	}
	out = capture(t, func() error {
		return cmdAblate(append([]string{"--what", "rangequery", "--dataset", "SZipf", "--d", "5", "--eps", "2"}, tinyFlags...))
	})
	if !strings.Contains(out, "selectivity") {
		t.Fatalf("range-query figure malformed:\n%s", out)
	}
	if err := cmdAblate(append([]string{"--what", "nope"}, tinyFlags...)); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestCmdDemo(t *testing.T) {
	out := capture(t, func() error {
		return cmdDemo([]string{"--d", "6", "--n", "4000"})
	})
	if !strings.Contains(out, "True density") || !strings.Contains(out, "DAM estimate") {
		t.Fatalf("demo maps missing:\n%s", out)
	}
	if !strings.Contains(out, "W2(true, estimate)") {
		t.Fatalf("demo W2 line missing:\n%s", out)
	}
}

func TestHarnessFlagsThreadWorkers(t *testing.T) {
	// The shared --workers flag must reach the suite's configuration.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	hc := harnessFlags(fs)
	if err := fs.Parse([]string{"--workers", "3", "--repeats", "4"}); err != nil {
		t.Fatal(err)
	}
	cfg := hc.suite().Config()
	if cfg.Workers != 3 || cfg.Repeats != 4 {
		t.Fatalf("config %+v did not pick up flags", cfg)
	}
}
