package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dpspatial"
	"dpspatial/internal/collector"
)

// The report / aggregate / estimate subcommands drive the three-stage
// report lifecycle across process boundaries: `report` plays the client
// fleet (one LDP report per user), `aggregate` plays any number of
// aggregation shards (pure counting — it never rebuilds the mechanism),
// and `estimate --from-aggregate` plays the estimation service. File
// formats are line-oriented JSON so shards can stream over pipes; the
// same framing is the HTTP collector's wire format (see serve.go), so
// the metadata types live in internal/collector.

const (
	reportsFormat   = collector.ReportsFormat
	aggregateFormat = collector.AggregateFormat
)

// aggregateEnvelope is the aggregate file: the pipeline header plus the
// accumulated counts.
type aggregateEnvelope struct {
	collector.Pipeline
	Aggregate *dpspatial.Aggregate `json:"aggregate"`
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	in := fs.String("in", "", "input CSV with x,y columns")
	d := fs.Int("d", 15, "grid side length")
	eps := fs.Float64("eps", 3.5, "privacy budget")
	mech := fs.String("mech", "DAM", "mechanism: "+strings.Join(dpspatial.MechanismNames(), ", "))
	seed := fs.Uint64("seed", 1, "random seed")
	shards := fs.Int("shards", 1, "number of report shard files to write round-robin")
	out := fs.String("out", "", "output path (default stdout); with --shards k > 1, a prefix for <out>-000.jsonl ...")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing --in")
	}
	if *shards < 1 {
		return fmt.Errorf("--shards must be >= 1")
	}
	if *shards > 1 && *out == "" {
		return fmt.Errorf("--shards > 1 needs --out as a file prefix")
	}
	pts, err := readPointsCSV(*in)
	if err != nil {
		return err
	}
	dom, err := dpspatial.DomainOver(pts, *d)
	if err != nil {
		return err
	}
	truth := dpspatial.HistFromPoints(dom, pts)

	hdrPtr, rm, err := dpspatial.NewCollectorPipeline(*mech, dom, *eps)
	if err != nil {
		return err
	}
	hdr := *hdrPtr
	hdr.Format = reportsFormat

	writers := make([]*bufio.Writer, *shards)
	if *shards == 1 && *out == "" {
		writers[0] = bufio.NewWriter(os.Stdout)
	} else {
		for s := range writers {
			path := *out
			if *shards > 1 {
				path = fmt.Sprintf("%s-%03d.jsonl", *out, s)
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			writers[s] = bufio.NewWriter(f)
		}
	}
	hdrLine, err := json.Marshal(&hdr)
	if err != nil {
		return err
	}
	for _, w := range writers {
		fmt.Fprintf(w, "%s\n", hdrLine)
	}

	// One report per user, drawn in the same cell-major order (and from
	// the same seeded stream) as the in-process Estimate pipeline, so the
	// sharded CLI path reproduces it exactly.
	r := dpspatial.NewRand(*seed)
	enc := make([]*json.Encoder, len(writers))
	for i, w := range writers {
		enc[i] = json.NewEncoder(w)
	}
	user := 0
	for i, c := range truth.Mass {
		for k := 0; k < int(c); k++ {
			rep, err := rm.Report(i, r)
			if err != nil {
				return err
			}
			if err := enc[user%len(enc)].Encode(&rep); err != nil {
				return err
			}
			user++
		}
	}
	for _, w := range writers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func cmdAggregate(args []string) error {
	fs := flag.NewFlagSet("aggregate", flag.ExitOnError)
	out := fs.String("out", "", "output aggregate JSON path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs := fs.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"} // aggregate a report stream from stdin
	}

	var hdr *collector.Pipeline
	var agg *dpspatial.Aggregate
	for _, path := range inputs {
		inHdr, inAgg, err := consumeInput(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if hdr == nil {
			hdr, agg = inHdr, inAgg
			continue
		}
		if err := hdr.Compatible(inHdr); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := agg.Merge(inAgg); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	}

	env := aggregateEnvelope{Pipeline: *hdr, Aggregate: agg}
	env.Format = aggregateFormat
	outBytes, err := json.Marshal(&env)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Println(string(outBytes))
		return nil
	}
	return os.WriteFile(*out, append(outBytes, '\n'), 0o644)
}

// consumeInput reads one aggregation input — a reports file/stream (each
// report counted into a fresh aggregate) or an already-aggregated shard
// (decoded as-is) — and returns its header and aggregate.
func consumeInput(path string) (*collector.Pipeline, *dpspatial.Aggregate, error) {
	var rd io.Reader
	if path == "-" {
		rd = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		rd = f
	}
	br := bufio.NewReaderSize(rd, 1<<20)
	first, err := br.ReadBytes('\n')
	if err != nil && len(first) == 0 {
		return nil, nil, fmt.Errorf("empty input")
	}

	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(first, &probe); err != nil {
		return nil, nil, fmt.Errorf("not a reports or aggregate file: %v", err)
	}
	switch probe.Format {
	case reportsFormat:
		var hdr collector.Pipeline
		if err := json.Unmarshal(first, &hdr); err != nil {
			return nil, nil, err
		}
		planes := make([][]float64, len(hdr.Shape))
		for i, n := range hdr.Shape {
			planes[i] = make([]float64, n)
		}
		agg := &dpspatial.Aggregate{Scheme: hdr.Scheme, Planes: planes}
		dec := json.NewDecoder(br)
		for {
			var rep dpspatial.Report
			if err := dec.Decode(&rep); err == io.EOF {
				break
			} else if err != nil {
				return nil, nil, fmt.Errorf("bad report line: %v", err)
			}
			if err := agg.Add(rep); err != nil {
				return nil, nil, err
			}
		}
		return &hdr, agg, nil
	case aggregateFormat:
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, nil, err
		}
		var env aggregateEnvelope
		if err := json.Unmarshal(append(first, rest...), &env); err != nil {
			return nil, nil, err
		}
		if env.Aggregate == nil {
			return nil, nil, fmt.Errorf("aggregate file has no aggregate")
		}
		hdr := env.Pipeline
		return &hdr, env.Aggregate, nil
	default:
		return nil, nil, fmt.Errorf("unknown format %q", probe.Format)
	}
}

// estimateFromAggregateFile rebuilds the estimator recorded in an
// aggregate envelope and decodes its counts.
func estimateFromAggregateFile(path string) (*dpspatial.Histogram, error) {
	hdr, agg, err := consumeInput(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rm, err := dpspatial.NewMechanismFromPipeline(hdr)
	if err != nil {
		return nil, err
	}
	return rm.EstimateFromAggregate(agg)
}
