// Command damctl drives the paper-reproduction harness: it regenerates
// every table and figure of the evaluation, generates datasets, and runs
// the estimation pipeline on CSV point data.
//
// Usage:
//
//	damctl fig    --fig 8|9a..9t|13a..13d|14a|14b [--scale 0.05] [--workers 0]
//	damctl tables --table 3|4|5
//	damctl shapes                 # audit key figures against the paper's claims
//	damctl gen    --dataset Crime --out points.csv [--scale 0.05]
//	damctl report --in points.csv --d 15 --eps 3.5 [--mech DAM] [--shards 4 --out rep]
//	damctl aggregate [--out agg.json] reports.jsonl|shard.json|- ...
//	damctl estimate --in points.csv --d 15 --eps 3.5 [--mech DAM] [--workers 1]
//	damctl estimate --from-aggregate agg.json
//	damctl estimate --from-url http://127.0.0.1:8080
//	damctl serve  [--addr 127.0.0.1:8080] [--cadence 2s] [--auth-token s3cret] [--mech DAM --d 15 --eps 3.5] [--data-dir state/] [--slow-ms 250 --log-format json] [--pprof] [--tls-cert c.pem --tls-key k.pem]
//	damctl supervise --member http://c1:8080 --member http://c2:8080 [--policy hash] [--auth-token s3cret] [--slow-ms 250] [--tls-cert c.pem --tls-key k.pem]
//	damctl submit --url http://127.0.0.1:8080 [--retries 3] [--submission-id id] [--tls-ca ca.pem] rep-000.jsonl shard.json blob.dpa ...
//	damctl query  --url http://127.0.0.1:8080 --range 2,2,8,8 | --topk 5   (or --from-aggregate agg.json)
//	damctl demo                   # before/after ASCII density maps
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fig":
		err = cmdFig(os.Args[2:])
	case "tables":
		err = cmdTables(os.Args[2:])
	case "shapes":
		err = cmdShapes(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "aggregate":
		err = cmdAggregate(os.Args[2:])
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "supervise":
		err = cmdSupervise(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "ablate":
		err = cmdAblate(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "damctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "damctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `damctl — Disk Area Mechanism reproduction harness

Commands:
  fig       regenerate a paper figure (--fig 8, 9a..9t, 13a..13d, 14a, 14b)
  tables    print a paper table (--table 3, 4 or 5)
  shapes    audit key figures against the paper's qualitative claims
  gen       generate a dataset to CSV (--dataset Crime|NYC|Normal|SZipf|MNormal)
  report    client stage: one LDP report per user (--in file [--shards k])
  aggregate aggregator stage: count reports / merge shards (files or '-')
  estimate  run the DP pipeline on CSV points (--in file --d 15 --eps 3.5),
            decode a merged aggregate (--from-aggregate agg.json), or
            fetch from a collector (--from-url http://host:port)
  serve     run the HTTP collector daemon (merges shards, re-estimates
            on --cadence with warm-started EM; --data-dir makes the
            merged state crash-safe and restarts recover it)
  supervise run the fleet supervisor: route submissions across --member
            collectors and serve the hierarchically merged estimate

            both daemons trace every request (W3C traceparent in, spans
            out on GET /v1/traces, X-Dpspatial-Trace-Id echoed back),
            log slow requests with --slow-ms/--log-format, gate pprof
            behind --pprof, and terminate TLS with --tls-cert/--tls-key;
            client commands trust a private CA via --tls-ca
  submit    ship report/aggregate shard files to a collector or
            supervisor (--url; --retries survives transient failures)
  query     answer a range (--range x0,y0,x1,y1) or top-k (--topk k)
            query from a service (--url) or a merged aggregate file
            (--from-aggregate); both routes print identical answers
  ablate    ablation studies (--what shrink|post|baselines|rangequery)
  demo      ASCII before/after density maps on synthetic data

Shared harness flags: --scale (dataset size multiplier, default 0.05),
--repeats (averaging runs, default 2), --seed, --max-points, --no-lp-cal,
--workers (concurrent trial workers, 0 = all cores)`)
}

// harnessFlags registers the shared experiment configuration flags.
func harnessFlags(fs *flag.FlagSet) *harnessConfig {
	hc := &harnessConfig{}
	fs.Float64Var(&hc.scale, "scale", 0.05, "dataset size multiplier (1.0 = paper scale)")
	fs.IntVar(&hc.repeats, "repeats", 2, "repetitions to average (paper: 10)")
	fs.Uint64Var(&hc.seed, "seed", 2025, "random seed")
	fs.IntVar(&hc.maxPoints, "max-points", 40000, "cap on users per dataset part (0 = all)")
	fs.BoolVar(&hc.noLPCal, "no-lp-cal", false, "disable Local-Privacy calibration of SEM-Geo-I")
	fs.IntVar(&hc.workers, "workers", 0, "concurrent trial workers (0 = all cores; output is identical for any value)")
	return hc
}

type harnessConfig struct {
	scale     float64
	repeats   int
	seed      uint64
	maxPoints int
	noLPCal   bool
	workers   int
}
