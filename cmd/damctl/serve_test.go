package main

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/durable"
)

// startTestCollector runs a collector with the CLI's mechanism builder
// (adopt-from-first-submission) under an httptest server.
func startTestCollector(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := collector.New(collector.Config{
		Build: func(p *collector.Pipeline) (collector.Estimator, error) {
			return dpspatial.NewMechanismFromPipeline(p)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	t.Cleanup(srv.Close)
	return srv
}

// TestSubmitEstimateFromURL drives the networked lifecycle end to end
// from the CLI: report shards submitted to a collector over HTTP must
// decode to exactly the estimate the file-based aggregate path produces
// on the same shards.
func TestSubmitEstimateFromURL(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "points.csv")
	capture(t, func() error {
		return cmdGen([]string{"--dataset", "SZipf", "--scale", "0.002", "--seed", "7", "--out", pts})
	})
	prefix := filepath.Join(dir, "rep")
	capture(t, func() error {
		return cmdReport([]string{"--in", pts, "--d", "6", "--eps", "1.5",
			"--seed", "5", "--shards", "2", "--out", prefix})
	})

	srv := startTestCollector(t)
	submitOut := capture(t, func() error {
		return cmdSubmit([]string{"--url", srv.URL, prefix + "-000.jsonl", prefix + "-001.jsonl"})
	})
	if !strings.Contains(submitOut, "generation 2") {
		t.Fatalf("submit did not acknowledge two merged shards:\n%s", submitOut)
	}

	fromURL := capture(t, func() error {
		return cmdEstimate([]string{"--from-url", srv.URL})
	})
	merged := filepath.Join(dir, "agg.json")
	capture(t, func() error {
		return cmdAggregate([]string{"--out", merged, prefix + "-000.jsonl", prefix + "-001.jsonl"})
	})
	fromAgg := capture(t, func() error {
		return cmdEstimate([]string{"--from-aggregate", merged})
	})
	if fromURL != fromAgg {
		t.Fatalf("collector estimate differs from the file-based aggregate estimate\nfrom url:\n%s\nfrom aggregate:\n%s", fromURL, fromAgg)
	}
	if !strings.HasPrefix(fromURL, "cell_x,cell_y,probability\n") {
		t.Fatalf("unexpected estimate output:\n%s", fromURL)
	}
}

// TestSubmitMixedShardKinds submits a report shard and a binary
// aggregate blob of the second shard, and checks the collector's
// estimate still matches the file-based merge of both.
func TestSubmitMixedShardKinds(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "points.csv")
	capture(t, func() error {
		return cmdGen([]string{"--dataset", "SZipf", "--scale", "0.002", "--seed", "9", "--out", pts})
	})
	prefix := filepath.Join(dir, "rep")
	capture(t, func() error {
		return cmdReport([]string{"--in", pts, "--d", "5", "--eps", "2",
			"--seed", "3", "--shards", "2", "--out", prefix})
	})
	// Aggregate the second shard into an envelope file first, so submit
	// exercises both the reports framing and the envelope framing.
	shard1 := filepath.Join(dir, "shard1.json")
	capture(t, func() error {
		return cmdAggregate([]string{"--out", shard1, prefix + "-001.jsonl"})
	})

	srv := startTestCollector(t)
	capture(t, func() error {
		return cmdSubmit([]string{"--url", srv.URL, prefix + "-000.jsonl", shard1})
	})
	fromURL := capture(t, func() error {
		return cmdEstimate([]string{"--from-url", srv.URL})
	})

	merged := filepath.Join(dir, "agg.json")
	capture(t, func() error {
		return cmdAggregate([]string{"--out", merged, prefix + "-000.jsonl", prefix + "-001.jsonl"})
	})
	fromAgg := capture(t, func() error {
		return cmdEstimate([]string{"--from-aggregate", merged})
	})
	if fromURL != fromAgg {
		t.Fatal("mixed report/envelope submission decodes differently from the file merge")
	}
}

// TestSubmitDurableRestartDuplicate is the CLI face of the durability
// story: a shard submitted under an explicit --submission-id before a
// hard crash is acknowledged as a duplicate when re-submitted to a
// fresh collector recovering from the same --data-dir, and the
// recovered estimate matches the file-based merge of everything that
// was ever accepted.
func TestSubmitDurableRestartDuplicate(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "points.csv")
	capture(t, func() error {
		return cmdGen([]string{"--dataset", "SZipf", "--scale", "0.002", "--seed", "11", "--out", pts})
	})
	prefix := filepath.Join(dir, "rep")
	capture(t, func() error {
		return cmdReport([]string{"--in", pts, "--d", "6", "--eps", "1.5",
			"--seed", "4", "--shards", "2", "--out", prefix})
	})

	startDurableCollector := func(dataDir string) (*httptest.Server, *durable.Store) {
		t.Helper()
		st, err := durable.Open(dataDir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := collector.New(collector.Config{
			Store: st,
			Build: func(p *collector.Pipeline) (collector.Estimator, error) {
				return dpspatial.NewMechanismFromPipeline(p)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(c)
		t.Cleanup(srv.Close)
		return srv, st
	}

	stateDir := filepath.Join(dir, "state")
	srv1, st1 := startDurableCollector(stateDir)
	firstOut := capture(t, func() error {
		return cmdSubmit([]string{"--url", srv1.URL, "--submission-id", "cli-shard-0", prefix + "-000.jsonl"})
	})
	if strings.Contains(firstOut, "duplicate") {
		t.Fatalf("first submission must not be a duplicate:\n%s", firstOut)
	}

	// kill -9: no collector.Close, so no shutdown snapshot — recovery
	// has only the WAL to go on.
	srv1.Close()
	st1.Close()

	srv2, st2 := startDurableCollector(stateDir)
	defer st2.Close()
	replay := capture(t, func() error {
		return cmdSubmit([]string{"--url", srv2.URL, "--submission-id", "cli-shard-0", prefix + "-000.jsonl"})
	})
	if !strings.Contains(replay, "duplicate: original ack replayed") {
		t.Fatalf("re-submission after restart must replay the original ack:\n%s", replay)
	}
	if !strings.Contains(replay, "generation 1") {
		t.Fatalf("replayed ack must carry the original generation:\n%s", replay)
	}
	capture(t, func() error {
		return cmdSubmit([]string{"--url", srv2.URL, prefix + "-001.jsonl"})
	})

	fromURL := capture(t, func() error {
		return cmdEstimate([]string{"--from-url", srv2.URL})
	})
	merged := filepath.Join(dir, "agg.json")
	capture(t, func() error {
		return cmdAggregate([]string{"--out", merged, prefix + "-000.jsonl", prefix + "-001.jsonl"})
	})
	fromAgg := capture(t, func() error {
		return cmdEstimate([]string{"--from-aggregate", merged})
	})
	if fromURL != fromAgg {
		t.Fatalf("recovered collector estimate differs from the file-based merge\nfrom url:\n%s\nfrom aggregate:\n%s", fromURL, fromAgg)
	}
}
