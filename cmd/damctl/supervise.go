package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dpspatial"
	"dpspatial/internal/fleet"
)

// The supervise subcommand runs the fleet-supervisor daemon
// (internal/fleet): it fronts N `damctl serve` collectors, routes
// submissions across them, and serves the estimate decoded from the
// hierarchical merge of every member's aggregate. It speaks the
// collector wire protocol, so `damctl submit` and `damctl estimate
// --from-url` point at it exactly like at a single collector.

// memberList collects repeated --member flags (comma-separating also
// works: --member http://a:8080,http://b:8080).
type memberList []string

func (m *memberList) String() string { return strings.Join(*m, ",") }

func (m *memberList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			*m = append(*m, u)
		}
	}
	return nil
}

func cmdSupervise(args []string) error {
	fs := flag.NewFlagSet("supervise", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address")
	var members memberList
	fs.Var(&members, "member", "downstream collector base URL (repeat or comma-separate for a fleet)")
	policy := fs.String("policy", fleet.PolicyRoundRobin, "routing policy: "+strings.Join(fleet.Policies(), ", "))
	cadence := fs.Duration("cadence", 2*time.Second, "health-probe + merge + warm-re-estimate cadence (0 = pull only on demand)")
	authToken := fs.String("auth-token", "", "shared bearer-token secret: required on our endpoints and presented to members")
	mech := fs.String("mech", "", "pre-build this mechanism at startup (default: adopt from the first submission): "+strings.Join(dpspatial.MechanismNames(), ", "))
	d := fs.Int("d", 15, "grid side length (with --mech)")
	eps := fs.Float64("eps", 3.5, "privacy budget (with --mech)")
	minX := fs.Float64("minx", 0, "domain lower-left x (with --mech)")
	minY := fs.Float64("miny", 0, "domain lower-left y (with --mech)")
	side := fs.Float64("side", 1, "domain side length (with --mech)")
	metricsOn := fs.Bool("metrics", true, "serve the Prometheus text exposition on GET /metrics (behind --auth-token like the data endpoints)")
	df := addDaemonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(members) == 0 {
		return fmt.Errorf("missing --member (at least one collector URL)")
	}
	if err := df.validate(); err != nil {
		return err
	}

	opts := []dpspatial.FleetOption{
		dpspatial.WithFleetPolicy(*policy),
		dpspatial.WithFleetCadence(*cadence),
		dpspatial.WithFleetAuthToken(*authToken),
		dpspatial.WithFleetMetrics(*metricsOn),
		dpspatial.WithFleetTracing(!df.tracingDisabled()),
		dpspatial.WithFleetTraceBuffer(df.traceCapacity()),
		dpspatial.WithFleetSlowLog(time.Duration(*df.slowMs*float64(time.Millisecond)), *df.logFormat == "json"),
		dpspatial.WithFleetPprof(*df.pprof),
	}
	var sup *dpspatial.FleetSupervisor
	var err error
	if *mech != "" {
		dom, derr := dpspatial.NewDomain(*minX, *minY, *side, *d)
		if derr != nil {
			return derr
		}
		_, sup, err = dpspatial.NewFleetPipeline(*mech, dom, *eps, members, opts...)
	} else {
		sup, err = dpspatial.NewFleetSupervisor(members, opts...)
	}
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sup.Start()
	defer sup.Close()
	srv := &http.Server{Handler: sup}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- df.serve(srv, ln) }()
	fmt.Printf("damctl: fleet supervisor listening on %s://%s (%d members, %s routing, cadence %s)\n",
		df.scheme(), ln.Addr(), len(members), *policy, *cadence)
	if *metricsOn {
		fmt.Printf("damctl: metrics exposition at %s://%s/metrics\n", df.scheme(), ln.Addr())
	}
	if !df.tracingDisabled() {
		fmt.Printf("damctl: trace buffer at %s://%s/v1/traces\n", df.scheme(), ln.Addr())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
