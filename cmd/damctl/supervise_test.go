package main

import (
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpspatial"
)

// startTestFleet wires two adopt-mode collectors under an adopt-mode
// supervisor — the `damctl supervise` topology — all over httptest.
func startTestFleet(t *testing.T) *httptest.Server {
	t.Helper()
	urls := make([]string, 2)
	for i := range urls {
		srv := startTestCollector(t)
		urls[i] = srv.URL
	}
	sup, err := dpspatial.NewFleetSupervisor(urls)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sup)
	t.Cleanup(func() { srv.Close(); sup.Close() })
	return srv
}

// TestSubmitEstimateViaSupervisor drives the fleet from the CLI: report
// shards submitted to a supervisor over HTTP — routed across two real
// collectors — must decode to exactly the estimate the file-based
// aggregate path produces on the same shards. `submit` and `estimate
// --from-url` point at the supervisor with no fleet-specific flags.
func TestSubmitEstimateViaSupervisor(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "points.csv")
	capture(t, func() error {
		return cmdGen([]string{"--dataset", "SZipf", "--scale", "0.002", "--seed", "7", "--out", pts})
	})
	prefix := filepath.Join(dir, "rep")
	capture(t, func() error {
		return cmdReport([]string{"--in", pts, "--d", "6", "--eps", "1.5",
			"--seed", "5", "--shards", "3", "--out", prefix})
	})

	srv := startTestFleet(t)
	submitOut := capture(t, func() error {
		return cmdSubmit([]string{"--url", srv.URL,
			prefix + "-000.jsonl", prefix + "-001.jsonl", prefix + "-002.jsonl"})
	})
	if !strings.Contains(submitOut, "generation 3") {
		t.Fatalf("submit did not acknowledge three routed shards:\n%s", submitOut)
	}
	if !strings.Contains(submitOut, " via http") {
		t.Fatalf("submit acks through a supervisor should name the routed member:\n%s", submitOut)
	}

	fromURL := capture(t, func() error {
		return cmdEstimate([]string{"--from-url", srv.URL})
	})
	merged := filepath.Join(dir, "agg.json")
	capture(t, func() error {
		return cmdAggregate([]string{"--out", merged,
			prefix + "-000.jsonl", prefix + "-001.jsonl", prefix + "-002.jsonl"})
	})
	fromAgg := capture(t, func() error {
		return cmdEstimate([]string{"--from-aggregate", merged})
	})
	if fromURL != fromAgg {
		t.Fatalf("fleet estimate differs from the file-based aggregate estimate\nfrom url:\n%s\nfrom aggregate:\n%s", fromURL, fromAgg)
	}
}

// TestMemberListFlag pins the --member flag's accumulation and
// comma-splitting.
func TestMemberListFlag(t *testing.T) {
	var m memberList
	for _, v := range []string{"http://a:1", "http://b:2,http://c:3", " http://d:4 , "} {
		if err := m.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	want := memberList{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("memberList parsed %v, want %v", m, want)
	}
}
