package dpspatial

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"dpspatial/internal/collector"
)

// lifecycleMechanisms builds one mechanism per family on a small grid —
// every family, now that the baselines and range/trajectory mechanisms
// ride the same report lifecycle. SEM-Geo-I is constructed directly from
// a Geo-I budget so the tests do not pay for local-privacy calibration.
func lifecycleMechanisms(t *testing.T) (Domain, map[string]ReportingMechanism) {
	t.Helper()
	dom, err := NewDomain(0, 0, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	mechs := map[string]ReportingMechanism{}
	for name, build := range map[string]func() (Mechanism, error){
		"DAM":           func() (Mechanism, error) { return NewDAM(dom, 1.5) },
		"HUEM":          func() (Mechanism, error) { return NewHUEM(dom, 1.5) },
		"MDSW":          func() (Mechanism, error) { return NewMDSW(dom, 1.5) },
		"SEM-Geo-I":     func() (Mechanism, error) { return NewSEMGeoI(dom, 1.2) },
		"CFO":           func() (Mechanism, error) { return NewCFO(dom, 1.5) },
		"PlanarLaplace": func() (Mechanism, error) { return NewPlanarLaplace(dom, 1.2) },
		"AHEAD":         func() (Mechanism, error) { return NewAHEAD(dom, 1.5) },
		"LDPTrace":      func() (Mechanism, error) { return NewLDPTrace(dom, 1.5, LDPTraceMaxLen) },
		"PivotTrace":    func() (Mechanism, error) { return NewPivotTrace(dom, 1.5, PivotTraceMaxPivots) },
	} {
		m, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rm, err := AsReporting(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mechs[name] = rm
	}
	return dom, mechs
}

// lifecycleTruth is a small synthetic count histogram exercising empty
// and heavy cells.
func lifecycleTruth(dom Domain) *Histogram {
	truth := &Histogram{Dom: dom, Mass: make([]float64, dom.NumCells())}
	for i := range truth.Mass {
		truth.Mass[i] = float64((i * 7) % 23)
	}
	truth.Mass[0] = 0
	truth.Mass[len(truth.Mass)-1] = 120
	return truth
}

// TestAggregateMergeLaws checks, for every mechanism family, that a
// shard-split of n users aggregates to exactly the single-shard result
// under any merge grouping and order (associativity + commutativity).
func TestAggregateMergeLaws(t *testing.T) {
	dom, mechs := lifecycleMechanisms(t)
	truth := lifecycleTruth(dom)
	for name, rm := range mechs {
		t.Run(name, func(t *testing.T) {
			// One fixed report stream, split round-robin over 3 shards.
			r := NewRand(31)
			single := rm.NewAggregate()
			shards := []*Aggregate{rm.NewAggregate(), rm.NewAggregate(), rm.NewAggregate()}
			user := 0
			for i, c := range truth.Mass {
				for k := 0; k < int(c); k++ {
					rep, err := rm.Report(i, r)
					if err != nil {
						t.Fatal(err)
					}
					if err := single.Add(rep); err != nil {
						t.Fatal(err)
					}
					if err := shards[user%3].Add(rep); err != nil {
						t.Fatal(err)
					}
					user++
				}
			}

			merge := func(order ...int) *Aggregate {
				acc := shards[order[0]].Clone()
				for _, s := range order[1:] {
					if err := acc.Merge(shards[s]); err != nil {
						t.Fatal(err)
					}
				}
				return acc
			}
			leftAssoc := merge(0, 1, 2)
			commuted := merge(2, 0, 1)
			rightInner := shards[1].Clone()
			if err := rightInner.Merge(shards[2]); err != nil {
				t.Fatal(err)
			}
			rightAssoc := shards[0].Clone()
			if err := rightAssoc.Merge(rightInner); err != nil {
				t.Fatal(err)
			}

			for variant, got := range map[string]*Aggregate{
				"(s0+s1)+s2": leftAssoc,
				"s0+(s1+s2)": rightAssoc,
				"s2+s0+s1":   commuted,
			} {
				if !reflect.DeepEqual(got, single) {
					t.Fatalf("%s: sharded merge differs from single-shard aggregation", variant)
				}
			}

			// The merged aggregate must decode to the same histogram as
			// the single-shard one.
			a, err := rm.EstimateFromAggregate(leftAssoc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := rm.EstimateFromAggregate(single)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Mass, b.Mass) {
				t.Fatal("merged aggregate estimates differently than single-shard aggregate")
			}
		})
	}
}

// TestAHEADShardMergeByLevel splits one AHEAD report stream into shards
// BY HIERARCHY LEVEL — each shard holds only the reports that landed on
// one level, so every shard populates a different support plane, the most
// lopsided plane mix a fleet can produce — and checks that merging the
// shards through the binary wire format still reproduces the single-shard
// aggregate and its decode bit for bit.
func TestAHEADShardMergeByLevel(t *testing.T) {
	dom, err := NewDomain(0, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAHEAD(dom, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := AsReporting(m)
	if err != nil {
		t.Fatal(err)
	}
	truth := lifecycleTruth(dom)
	r := NewRand(41)
	single := rm.NewAggregate()
	byLevel := map[int]*Aggregate{}
	for i, c := range truth.Mass {
		for k := 0; k < int(c); k++ {
			rep, err := rm.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := single.Add(rep); err != nil {
				t.Fatal(err)
			}
			// Plane 0 records which hierarchy level the user landed on.
			lvl := rep.Planes[0][0]
			sh := byLevel[lvl]
			if sh == nil {
				sh = rm.NewAggregate()
				byLevel[lvl] = sh
			}
			if err := sh.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(byLevel) < 2 {
		t.Fatalf("report stream landed on %d levels, need >= 2 for a mixed-plane merge", len(byLevel))
	}

	// Merge in descending level order, round-tripping every shard through
	// the DPA binary wire format first — the path fleet members ship on.
	var merged *Aggregate
	for lvl := len(rm.ReportShape()); lvl >= 0; lvl-- {
		sh, ok := byLevel[lvl]
		if !ok {
			continue
		}
		blob, err := sh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wire := &Aggregate{}
		if err := wire.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = wire
			continue
		}
		if err := merged.Merge(wire); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(merged, single) {
		t.Fatal("by-level shard merge differs from single-shard aggregation")
	}
	a, err := rm.EstimateFromAggregate(merged)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rm.EstimateFromAggregate(single)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Mass, b.Mass) {
		t.Fatal("by-level merged aggregate decodes differently than the single-shard aggregate")
	}
}

// TestAggregateSerializationRoundTrip checks that every mechanism
// family's aggregate survives binary and JSON transport bit-identically.
func TestAggregateSerializationRoundTrip(t *testing.T) {
	dom, mechs := lifecycleMechanisms(t)
	truth := lifecycleTruth(dom)
	for name, rm := range mechs {
		t.Run(name, func(t *testing.T) {
			agg := rm.NewAggregate()
			if err := AccumulateHist(rm, agg, truth, NewRand(17)); err != nil {
				t.Fatal(err)
			}

			blob, err := agg.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var back Aggregate
			if err := back.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&back, agg) {
				t.Fatal("binary round-trip changed the aggregate")
			}
			blob2, err := back.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("binary encoding is not deterministic")
			}

			js, err := json.Marshal(agg)
			if err != nil {
				t.Fatal(err)
			}
			var jsBack Aggregate
			if err := json.Unmarshal(js, &jsBack); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&jsBack, agg) {
				t.Fatal("JSON round-trip changed the aggregate")
			}

			// A round-tripped aggregate still decodes.
			est, err := rm.EstimateFromAggregate(&back)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := rm.EstimateFromAggregate(agg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(est.Mass, direct.Mass) {
				t.Fatal("deserialized aggregate estimates differently")
			}
		})
	}
}

// TestLifecycleMatchesEstimateHist checks that the explicit client →
// aggregate → estimate path reproduces EstimateHist exactly for the same
// seed (the refactor's byte-compatibility guarantee).
func TestLifecycleMatchesEstimateHist(t *testing.T) {
	dom, mechs := lifecycleMechanisms(t)
	truth := lifecycleTruth(dom)
	for name, rm := range mechs {
		t.Run(name, func(t *testing.T) {
			monolithic, err := rm.EstimateHist(truth, NewRand(77))
			if err != nil {
				t.Fatal(err)
			}
			agg := rm.NewAggregate()
			if err := AccumulateHist(rm, agg, truth, NewRand(77)); err != nil {
				t.Fatal(err)
			}
			staged, err := rm.EstimateFromAggregate(agg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(monolithic.Mass, staged.Mass) {
				t.Fatal("staged lifecycle differs from EstimateHist")
			}
		})
	}
}

// TestEstimateFromAggregateRejectsForeignAggregate checks the scheme
// guard across mechanism families.
func TestEstimateFromAggregateRejectsForeignAggregate(t *testing.T) {
	dom, mechs := lifecycleMechanisms(t)
	truth := lifecycleTruth(dom)
	damAgg := mechs["DAM"].NewAggregate()
	if err := AccumulateHist(mechs["DAM"], damAgg, truth, NewRand(3)); err != nil {
		t.Fatal(err)
	}
	for _, other := range []string{"HUEM", "MDSW", "SEM-Geo-I", "CFO", "PlanarLaplace", "AHEAD", "LDPTrace", "PivotTrace"} {
		if _, err := mechs[other].EstimateFromAggregate(damAgg); err == nil {
			t.Fatalf("%s accepted a DAM aggregate", other)
		}
	}
	if _, err := EstimateFromAggregate(mechs["HUEM"], damAgg); err == nil {
		t.Fatal("package-level EstimateFromAggregate accepted a foreign aggregate")
	}
}

// TestCalibrateSEMGeoIMemoized checks that repeated calibrations return
// the identical budget (the bisection runs once per (d, ε)).
func TestCalibrateSEMGeoIMemoized(t *testing.T) {
	dom, err := NewDomain(0, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, err := CalibrateSEMGeoI(dom, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// A different domain geometry with the same grid side must hit the
	// same memo entry: the calibration depends only on (d, ε).
	shifted, err := NewDomain(-3, 7, 42, 5)
	if err != nil {
		t.Fatal(err)
	}
	second, err := CalibrateSEMGeoI(shifted, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("memoized calibration differs: %v vs %v", first, second)
	}
}

// TestEstimateFromAggregateWarmPublic exercises the public incremental
// path: estimate a first shard, merge a second, and re-estimate from the
// previous estimate in fewer iterations than from scratch.
func TestEstimateFromAggregateWarmPublic(t *testing.T) {
	dom, err := NewDomain(0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDAM(dom, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := &Histogram{Dom: dom, Mass: make([]float64, dom.NumCells())}
	for i := range truth.Mass {
		truth.Mass[i] = float64(30 + (i*13)%170)
	}
	r := NewRand(7)
	shard1, err := NewAggregateFor(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := AccumulateHist(m, shard1, truth, r); err != nil {
		t.Fatal(err)
	}
	est1, stats1, err := EstimateFromAggregateWarm(m, shard1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats1.Converged {
		t.Fatalf("shard-1 estimate did not converge in %d iterations", stats1.Iterations)
	}
	shard2, err := NewAggregateFor(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := AccumulateHist(m, shard2, truth, r); err != nil {
		t.Fatal(err)
	}
	merged := shard1.Clone()
	if err := merged.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	_, coldStats, err := EstimateFromAggregateWarm(m, merged, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, warmStats, err := EstimateFromAggregateWarm(m, merged, est1)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Iterations >= coldStats.Iterations {
		t.Fatalf("warm start took %d iterations, cold start took %d",
			warmStats.Iterations, coldStats.Iterations)
	}

	// Mechanisms without a warm-start estimator must say so.
	mdswMech, err := NewMDSW(dom, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EstimateFromAggregateWarm(mdswMech, merged, nil); err == nil {
		t.Fatal("MDSW warm start should be unsupported")
	}
}

// TestCollectorClientPublic round-trips two shards through a collector
// service with the public client helpers: the fetched estimate must be
// byte-identical to the in-process EstimateFromAggregate on the merged
// shards, and the stats must count the submissions.
func TestCollectorClientPublic(t *testing.T) {
	dom, err := NewDomain(0, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDAM(dom, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := AsReporting(m)
	if err != nil {
		t.Fatal(err)
	}
	truth := lifecycleTruth(dom)
	r := NewRand(17)
	shard1, shard2 := rm.NewAggregate(), rm.NewAggregate()
	if err := AccumulateHist(m, shard1, truth, r); err != nil {
		t.Fatal(err)
	}
	if err := AccumulateHist(m, shard2, truth, r); err != nil {
		t.Fatal(err)
	}
	merged := shard1.Clone()
	if err := merged.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	want, err := EstimateFromAggregate(m, merged)
	if err != nil {
		t.Fatal(err)
	}

	pipeline, prm, err := NewCollectorPipeline("DAM", dom, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if pipeline.Scheme != rm.Scheme() || prm.Scheme() != rm.Scheme() {
		t.Fatalf("pipeline scheme %q, mechanism scheme %q", pipeline.Scheme, rm.Scheme())
	}
	c, err := collector.New(collector.Config{Mechanism: rm, Pipeline: pipeline})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	defer srv.Close()

	client := NewCollectorClient(srv.URL)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	for _, shard := range []*Aggregate{shard1, shard2} {
		if _, err := client.SubmitAggregate(ctx, shard, pipeline); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("collector estimate is not byte-identical to the in-process EstimateFromAggregate")
	}
	var stats *CollectorStats
	if stats, err = client.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if stats.AggregateShards != 2 || stats.Reports != merged.N {
		t.Fatalf("stats did not count the submissions: %+v", stats)
	}
}

// TestFleetPipelinePublic drives the fleet supervisor through the
// public API: NewFleetPipeline over two real collectors, four shards
// submitted through the supervisor, and the fleet estimate must be
// byte-identical to the in-process EstimateFromAggregate on the union —
// the collector invariant one level up.
func TestFleetPipelinePublic(t *testing.T) {
	dom, err := NewDomain(0, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDAM(dom, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := AsReporting(m)
	if err != nil {
		t.Fatal(err)
	}
	truth := lifecycleTruth(dom)
	r := NewRand(29)
	shards := make([]*Aggregate, 4)
	union := rm.NewAggregate()
	for i := range shards {
		shards[i] = rm.NewAggregate()
		if err := AccumulateHist(m, shards[i], truth, r); err != nil {
			t.Fatal(err)
		}
		if err := union.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	want, err := EstimateFromAggregate(m, union)
	if err != nil {
		t.Fatal(err)
	}

	for _, policy := range []string{"round-robin", "hash"} {
		// Two fresh collectors in adopt mode per policy: the supervisor
		// injects the pinned pipeline, so neither needs pre-building.
		memberURLs := make([]string, 2)
		for i := range memberURLs {
			c, err := collector.New(collector.Config{
				Build: func(p *collector.Pipeline) (collector.Estimator, error) {
					return NewMechanismFromPipeline(p)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(c)
			defer srv.Close()
			memberURLs[i] = srv.URL
		}
		pipeline, sup, err := NewFleetPipeline("DAM", dom, 2.0, memberURLs, WithFleetPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		if pipeline.Scheme != rm.Scheme() {
			t.Fatalf("fleet pipeline scheme %q, mechanism scheme %q", pipeline.Scheme, rm.Scheme())
		}
		supSrv := httptest.NewServer(sup)
		client := NewCollectorClient(supSrv.URL)
		ctx := context.Background()
		for _, shard := range shards {
			if _, err := client.SubmitAggregate(ctx, shard, nil); err != nil {
				t.Fatal(err)
			}
		}
		got, meta, err := client.Estimate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Warm {
			t.Fatal("first fleet decode should be cold")
		}
		if !reflect.DeepEqual(got.Mass, want.Mass) {
			t.Fatalf("%s: fleet estimate is not byte-identical to the in-process EstimateFromAggregate", policy)
		}
		var stats *CollectorStats
		if stats, err = client.Stats(ctx); err != nil {
			t.Fatal(err)
		}
		if stats.Generation != uint64(len(shards)) || stats.Reports != union.N {
			t.Fatalf("%s: fleet stats did not count the submissions: %+v", policy, stats)
		}
		supSrv.Close()
		sup.Close()
	}
}
